//! Random walks over the H-graph: the sampling primitive behind random walk
//! shuffling and split-anchor selection.
//!
//! A walk of length `rwl` starts at some vgroup and is relayed `rwl` times,
//! each time over a uniformly random incident overlay link. The vgroup where
//! it stops is the selected sample. Two practical aspects from §5.1 are
//! modelled here:
//!
//! * **Bulk RNG** — all `rwl` random numbers are generated when the walk is
//!   created and carried with it, so no forwarding vgroup needs distributed
//!   random number generation and a Byzantine node cannot bias decisions by
//!   draining a pre-computed pool.
//! * **Certificates vs. backward phase** — the walk carries both the visited
//!   path (enough for the backward phase used by the synchronous deployment)
//!   and, optionally, a [`WalkCertificate`] chain (used by the asynchronous
//!   deployment) in which each forwarding vgroup signs the identity of the
//!   vgroup it forwarded to.

use crate::hgraph::HGraph;
use atum_crypto::{Digest, DigestWriter, Digestible, KeyRegistry, NodeSigner, Signature};
use atum_types::{
    Composition, NodeId, VgroupId, WalkId, WireDecode, WireEncode, WireError, WireReader,
    WireWriter,
};
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Why a walk was started; the selected vgroup interprets the result
/// accordingly.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WalkPurpose {
    /// Find the vgroup that will host a joining node.
    JoinPlacement {
        /// The joining node.
        joiner: NodeId,
    },
    /// Find an exchange partner for one member during a shuffle.
    ShuffleExchange {
        /// The member of the shuffling vgroup to be exchanged.
        member: NodeId,
    },
    /// Find the anchor vgroup after which a freshly split-off vgroup is
    /// inserted on one cycle.
    SplitAnchor {
        /// The cycle the anchor is for.
        cycle: u8,
        /// The new vgroup being inserted.
        new_group: VgroupId,
        /// The new vgroup's composition (so the anchor can introduce it to
        /// its former successor and vice versa).
        composition: Composition,
    },
    /// Plain sampling (used by tests and by applications that need a random
    /// vgroup).
    Sample,
}

impl Digestible for WalkPurpose {
    fn digest_fields(&self, w: &mut DigestWriter) {
        match self {
            WalkPurpose::JoinPlacement { joiner } => {
                w.write_tag(0);
                joiner.digest_fields(w);
            }
            WalkPurpose::ShuffleExchange { member } => {
                w.write_tag(1);
                member.digest_fields(w);
            }
            WalkPurpose::SplitAnchor {
                cycle,
                new_group,
                composition,
            } => {
                w.write_tag(2);
                w.write_u8(*cycle);
                new_group.digest_fields(w);
                composition.digest_fields(w);
            }
            WalkPurpose::Sample => w.write_tag(3),
        }
    }
}

impl WireEncode for WalkPurpose {
    fn wire_encode(&self, w: &mut WireWriter<'_>) {
        match self {
            WalkPurpose::JoinPlacement { joiner } => {
                w.put_u8(0);
                joiner.wire_encode(w);
            }
            WalkPurpose::ShuffleExchange { member } => {
                w.put_u8(1);
                member.wire_encode(w);
            }
            WalkPurpose::SplitAnchor {
                cycle,
                new_group,
                composition,
            } => {
                w.put_u8(2);
                w.put_u8(*cycle);
                new_group.wire_encode(w);
                composition.wire_encode(w);
            }
            WalkPurpose::Sample => w.put_u8(3),
        }
    }
}

impl WireDecode for WalkPurpose {
    fn wire_decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(match r.take_u8()? {
            0 => WalkPurpose::JoinPlacement {
                joiner: NodeId::wire_decode(r)?,
            },
            1 => WalkPurpose::ShuffleExchange {
                member: NodeId::wire_decode(r)?,
            },
            2 => WalkPurpose::SplitAnchor {
                cycle: r.take_u8()?,
                new_group: VgroupId::wire_decode(r)?,
                composition: Composition::wire_decode(r)?,
            },
            3 => WalkPurpose::Sample,
            _ => return Err(WireError::Malformed("walk-purpose tag")),
        })
    }
}

/// One step of a walk certificate: the forwarding vgroup attests which vgroup
/// it forwarded the walk to.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CertStep {
    /// The vgroup the walk was forwarded to.
    pub to: VgroupId,
    /// That vgroup's composition, as known by the forwarder.
    pub to_composition: Composition,
    /// Signatures by members of the *forwarding* vgroup over this step.
    pub signatures: Vec<(NodeId, Signature)>,
}

impl Digestible for CertStep {
    fn digest_fields(&self, w: &mut DigestWriter) {
        self.to.digest_fields(w);
        self.to_composition.digest_fields(w);
        w.write_len(self.signatures.len());
        for (node, sig) in &self.signatures {
            node.digest_fields(w);
            sig.digest_fields(w);
        }
    }
}

impl WireEncode for CertStep {
    fn wire_encode(&self, w: &mut WireWriter<'_>) {
        self.to.wire_encode(w);
        self.to_composition.wire_encode(w);
        w.put_seq(&self.signatures);
    }
}

impl WireDecode for CertStep {
    fn wire_decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(CertStep {
            to: VgroupId::wire_decode(r)?,
            to_composition: Composition::wire_decode(r)?,
            // Each signature entry is a NodeId (8) + a 32-byte tag.
            signatures: r.take_seq(40)?,
        })
    }
}

/// A chain of [`CertStep`]s proving the path a walk took.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct WalkCertificate {
    steps: Vec<CertStep>,
}

impl Digestible for WalkCertificate {
    fn digest_fields(&self, w: &mut DigestWriter) {
        w.write_seq(&self.steps);
    }
}

impl WalkCertificate {
    /// An empty certificate (walk not yet forwarded).
    pub fn new() -> Self {
        WalkCertificate { steps: Vec::new() }
    }

    /// Number of certified steps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// `true` when no step has been certified yet.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// The digest a forwarding vgroup's members sign for a step.
    pub fn step_digest(walk: WalkId, index: usize, to: VgroupId, to_comp: &Composition) -> Digest {
        let mut parts: Vec<Vec<u8>> = vec![
            b"walk-cert".to_vec(),
            walk.origin.raw().to_be_bytes().to_vec(),
            walk.seq.to_be_bytes().to_vec(),
            (index as u64).to_be_bytes().to_vec(),
            to.raw().to_be_bytes().to_vec(),
        ];
        for m in to_comp.iter() {
            parts.push(m.raw().to_be_bytes().to_vec());
        }
        let refs: Vec<&[u8]> = parts.iter().map(|p| p.as_slice()).collect();
        Digest::of_parts(&refs)
    }

    /// Appends a step signed by `signers` (members of the forwarding vgroup).
    pub fn push_step(
        &mut self,
        walk: WalkId,
        to: VgroupId,
        to_composition: Composition,
        signers: &[NodeSigner],
    ) {
        let digest = Self::step_digest(walk, self.steps.len(), to, &to_composition);
        let signatures = signers
            .iter()
            .map(|s| (s.node(), s.sign_digest(&digest)))
            .collect();
        self.steps.push(CertStep {
            to,
            to_composition,
            signatures,
        });
    }

    /// Verifies the chain: step 0 must be signed by a majority of
    /// `origin_composition`; step *i* (> 0) by a majority of the composition
    /// certified in step *i − 1*.
    ///
    /// Returns the final vgroup and its composition when valid.
    pub fn verify(
        &self,
        walk: WalkId,
        registry: &KeyRegistry,
        origin_composition: &Composition,
    ) -> Option<(VgroupId, Composition)> {
        let mut expected_signers = origin_composition.clone();
        for (index, step) in self.steps.iter().enumerate() {
            let digest = Self::step_digest(walk, index, step.to, &step.to_composition);
            let mut valid = 0usize;
            let mut seen: Vec<NodeId> = Vec::new();
            for (node, sig) in &step.signatures {
                if seen.contains(node) || !expected_signers.contains(*node) {
                    continue;
                }
                if registry.verify_digest(*node, &digest, sig) {
                    seen.push(*node);
                    valid += 1;
                }
            }
            if valid < expected_signers.majority() {
                return None;
            }
            expected_signers = step.to_composition.clone();
        }
        self.steps.last().map(|s| (s.to, s.to_composition.clone()))
    }
}

impl WireEncode for WalkCertificate {
    fn wire_encode(&self, w: &mut WireWriter<'_>) {
        w.put_seq(&self.steps);
    }
}

impl WireDecode for WalkCertificate {
    fn wire_decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        // A step is at minimum a VgroupId (8) + two empty length prefixes.
        let steps = r.take_seq(16)?;
        Ok(WalkCertificate { steps })
    }
}

/// The state carried by a random walk message.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WalkState {
    /// Identifier of the walk (origin vgroup + sequence number).
    pub id: WalkId,
    /// What the walk is for.
    pub purpose: WalkPurpose,
    /// The vgroup that started the walk.
    pub origin: VgroupId,
    /// Its composition at walk start (lets the selected vgroup answer
    /// directly in the certificate style, or the backward phase find its way
    /// home).
    pub origin_composition: Composition,
    /// Remaining steps before the walk stops.
    pub remaining: u8,
    /// Pre-generated random numbers, one per remaining step (§5.1 bulk RNG).
    pub rng_values: Vec<u64>,
    /// Vgroups visited so far, in order (origin first); the backward phase
    /// retraces this path.
    pub path: Vec<VgroupId>,
    /// Certificate chain (used by the asynchronous implementation).
    pub certificate: WalkCertificate,
}

impl Digestible for WalkState {
    fn digest_fields(&self, w: &mut DigestWriter) {
        self.id.digest_fields(w);
        self.purpose.digest_fields(w);
        self.origin.digest_fields(w);
        self.origin_composition.digest_fields(w);
        w.write_u8(self.remaining);
        w.write_seq(&self.rng_values);
        w.write_seq(&self.path);
        self.certificate.digest_fields(w);
    }
}

impl WireEncode for WalkState {
    fn wire_encode(&self, w: &mut WireWriter<'_>) {
        self.id.wire_encode(w);
        self.purpose.wire_encode(w);
        self.origin.wire_encode(w);
        self.origin_composition.wire_encode(w);
        w.put_u8(self.remaining);
        w.put_seq(&self.rng_values);
        w.put_seq(&self.path);
        self.certificate.wire_encode(w);
    }
}

impl WireDecode for WalkState {
    fn wire_decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let id = WalkId::wire_decode(r)?;
        let purpose = WalkPurpose::wire_decode(r)?;
        let origin = VgroupId::wire_decode(r)?;
        let origin_composition = Composition::wire_decode(r)?;
        let remaining = r.take_u8()?;
        let rng_values: Vec<u64> = r.take_seq(8)?;
        let path: Vec<VgroupId> = r.take_seq(8)?;
        let certificate = WalkCertificate::wire_decode(r)?;
        // `current()` expects a non-empty path, and `current_rng` indexes
        // `rng_values[len - remaining]`: reject encodings that would panic.
        if path.is_empty() {
            return Err(WireError::Malformed("walk path must contain the origin"));
        }
        if (remaining as usize) > rng_values.len() {
            return Err(WireError::Malformed("walk remaining exceeds bulk RNG pool"));
        }
        Ok(WalkState {
            id,
            purpose,
            origin,
            origin_composition,
            remaining,
            rng_values,
            path,
            certificate,
        })
    }
}

impl WalkState {
    /// Creates a new walk of length `rwl`, drawing the bulk random numbers
    /// from `rng`.
    pub fn new<R: Rng + ?Sized>(
        id: WalkId,
        purpose: WalkPurpose,
        origin: VgroupId,
        origin_composition: Composition,
        rwl: u8,
        rng: &mut R,
    ) -> Self {
        let rng_values = (0..rwl).map(|_| rng.gen::<u64>()).collect();
        WalkState {
            id,
            purpose,
            origin,
            origin_composition,
            remaining: rwl,
            rng_values,
            path: vec![origin],
            certificate: WalkCertificate::new(),
        }
    }

    /// `true` when the walk has no steps left (the current holder is the
    /// selected vgroup).
    pub fn is_complete(&self) -> bool {
        self.remaining == 0
    }

    /// The bulk random number to use for the next forwarding decision.
    pub fn current_rng(&self) -> Option<u64> {
        if self.is_complete() {
            None
        } else {
            let idx = self.rng_values.len() - self.remaining as usize;
            self.rng_values.get(idx).copied()
        }
    }

    /// Consumes one step: record that the walk moved to `next`.
    ///
    /// # Panics
    ///
    /// Panics if the walk is already complete.
    pub fn advance(&mut self, next: VgroupId) {
        assert!(!self.is_complete(), "walk already complete");
        self.remaining -= 1;
        self.path.push(next);
    }

    /// The vgroup currently holding the walk.
    pub fn current(&self) -> VgroupId {
        *self.path.last().expect("path always contains the origin")
    }

    /// Chooses the next hop among `neighbors` using the walk's own bulk RNG
    /// (deterministic given the walk state). Returns `None` when the walk is
    /// complete or there is no neighbour.
    pub fn choose_next(&self, neighbors: &[VgroupId]) -> Option<VgroupId> {
        if neighbors.is_empty() {
            return None;
        }
        let r = self.current_rng()?;
        Some(neighbors[(r % neighbors.len() as u64) as usize])
    }

    /// Chooses a link index among `total` incident links, re-routing around
    /// links the forwarding member knows are dead (`eligible` lists the
    /// others). The *primary* choice is `rng % total` — a pure function of
    /// the walk's bulk RNG, identical at every member regardless of local
    /// knowledge — and is kept whenever it is eligible (or nothing is), so
    /// members can only ever disagree about a hop whose primary target is
    /// locally known to have dissolved. Copies forwarded to a dissolved
    /// vgroup are lost regardless (no member is left there to relay them),
    /// so the deviation replaces guaranteed-dead copies with copies that
    /// agree on one deterministic alternative; it never splits a live hop.
    ///
    /// Returns `None` when the walk is complete or `total` is zero.
    pub fn choose_link_index(&self, total: usize, eligible: &[usize]) -> Option<usize> {
        if total == 0 {
            return None;
        }
        let r = self.current_rng()?;
        let primary = (r % total as u64) as usize;
        if eligible.is_empty() || eligible.contains(&primary) {
            Some(primary)
        } else {
            Some(eligible[(r % eligible.len() as u64) as usize])
        }
    }
}

/// Graph-level simulation used by the Figure 4 guideline: runs `walks` random
/// walks of length `rwl` starting from `start` and counts where they stop.
pub fn simulate_walk_hits<R: Rng + ?Sized>(
    graph: &HGraph,
    start: VgroupId,
    rwl: u8,
    walks: usize,
    rng: &mut R,
) -> BTreeMap<VgroupId, u64> {
    let mut hits: BTreeMap<VgroupId, u64> = BTreeMap::new();
    for v in graph.vertices() {
        hits.insert(v, 0);
    }
    for _ in 0..walks {
        let mut here = start;
        for _ in 0..rwl {
            // One step: pick a random incident link (2 per cycle).
            let cycle = rng.gen_range(0..graph.cycle_count());
            let forward: bool = rng.gen();
            here = if forward {
                graph.successor(cycle, here)
            } else {
                graph.predecessor(cycle, here)
            }
            .expect("walk stays on the graph");
        }
        *hits.entry(here).or_insert(0) += 1;
    }
    hits
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn comp(ids: &[u64]) -> Composition {
        ids.iter().map(|&i| NodeId::new(i)).collect()
    }

    #[test]
    fn walk_state_lifecycle() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let id = WalkId::new(VgroupId::new(1), 0);
        let mut walk = WalkState::new(
            id,
            WalkPurpose::Sample,
            VgroupId::new(1),
            comp(&[1, 2, 3]),
            3,
            &mut rng,
        );
        assert_eq!(walk.rng_values.len(), 3);
        assert!(!walk.is_complete());
        assert_eq!(walk.current(), VgroupId::new(1));

        let r0 = walk.current_rng().unwrap();
        walk.advance(VgroupId::new(2));
        let r1 = walk.current_rng().unwrap();
        assert_ne!(r0, r1, "bulk RNG values should differ step to step");
        walk.advance(VgroupId::new(3));
        walk.advance(VgroupId::new(4));
        assert!(walk.is_complete());
        assert_eq!(walk.current(), VgroupId::new(4));
        assert_eq!(walk.current_rng(), None);
        assert_eq!(walk.path.len(), 4);
    }

    #[test]
    #[should_panic(expected = "complete")]
    fn advance_past_completion_panics() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let mut walk = WalkState::new(
            WalkId::new(VgroupId::new(1), 0),
            WalkPurpose::Sample,
            VgroupId::new(1),
            comp(&[1]),
            1,
            &mut rng,
        );
        walk.advance(VgroupId::new(2));
        walk.advance(VgroupId::new(3));
    }

    #[test]
    fn choose_next_is_deterministic_given_state() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let walk = WalkState::new(
            WalkId::new(VgroupId::new(1), 7),
            WalkPurpose::Sample,
            VgroupId::new(1),
            comp(&[1]),
            5,
            &mut rng,
        );
        let neighbors = vec![VgroupId::new(10), VgroupId::new(11), VgroupId::new(12)];
        assert_eq!(walk.choose_next(&neighbors), walk.choose_next(&neighbors));
        assert_eq!(walk.choose_next(&[]), None);
    }

    #[test]
    fn link_choice_keeps_primary_unless_it_is_dead() {
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let walk = WalkState::new(
            WalkId::new(VgroupId::new(1), 0),
            WalkPurpose::Sample,
            VgroupId::new(1),
            comp(&[1]),
            4,
            &mut rng,
        );
        let total = 6usize;
        let primary = (walk.current_rng().unwrap() % total as u64) as usize;
        // The primary choice is used when eligible, and when the member has
        // no departed-set knowledge at all — so members with and without
        // that knowledge agree on every live hop.
        assert_eq!(walk.choose_link_index(total, &[]), Some(primary));
        let all: Vec<usize> = (0..total).collect();
        assert_eq!(walk.choose_link_index(total, &all), Some(primary));
        // Only when the primary target is known-dead does the choice move,
        // deterministically, into the eligible subset.
        let eligible: Vec<usize> = (0..total).filter(|&i| i != primary).collect();
        let rerouted = walk.choose_link_index(total, &eligible).unwrap();
        assert_ne!(rerouted, primary);
        assert!(eligible.contains(&rerouted));
        assert_eq!(walk.choose_link_index(0, &[]), None);
    }

    #[test]
    fn certificate_chain_verifies_and_detects_tampering() {
        let mut registry = KeyRegistry::new();
        for i in 0..9 {
            registry.register(NodeId::new(i), 5);
        }
        let origin_comp = comp(&[0, 1, 2]);
        let mid_comp = comp(&[3, 4, 5]);
        let final_comp = comp(&[6, 7, 8]);
        let walk_id = WalkId::new(VgroupId::new(1), 3);

        let mut cert = WalkCertificate::new();
        // Step 0: origin vgroup {0,1,2} forwards to vgroup 2 (members 3,4,5).
        let signers: Vec<NodeSigner> = [0, 1]
            .iter()
            .map(|i| registry.signer(NodeId::new(*i)).unwrap())
            .collect();
        cert.push_step(walk_id, VgroupId::new(2), mid_comp.clone(), &signers);
        // Step 1: vgroup 2 forwards to vgroup 3 (members 6,7,8).
        let signers: Vec<NodeSigner> = [3, 4]
            .iter()
            .map(|i| registry.signer(NodeId::new(*i)).unwrap())
            .collect();
        cert.push_step(walk_id, VgroupId::new(3), final_comp.clone(), &signers);

        let (selected, selected_comp) = cert.verify(walk_id, &registry, &origin_comp).unwrap();
        assert_eq!(selected, VgroupId::new(3));
        assert_eq!(selected_comp, final_comp);

        // Tampering with the final composition invalidates the chain.
        let mut tampered = cert.clone();
        tampered.steps[1].to_composition = comp(&[6, 7, 8, 9]);
        assert!(tampered.verify(walk_id, &registry, &origin_comp).is_none());

        // A chain signed by too few members fails.
        let mut thin = WalkCertificate::new();
        let signers: Vec<NodeSigner> = vec![registry.signer(NodeId::new(0)).unwrap()]; // 1 of 3 < majority
        thin.push_step(walk_id, VgroupId::new(2), mid_comp, &signers);
        assert!(thin.verify(walk_id, &registry, &origin_comp).is_none());

        // Wrong walk id fails.
        assert!(cert
            .verify(WalkId::new(VgroupId::new(1), 4), &registry, &origin_comp)
            .is_none());
    }

    #[test]
    fn empty_certificate_verifies_to_none() {
        let registry = KeyRegistry::new();
        let cert = WalkCertificate::new();
        assert!(cert.is_empty());
        assert!(cert
            .verify(WalkId::new(VgroupId::new(1), 0), &registry, &comp(&[1]))
            .is_none());
    }

    #[test]
    fn graph_walks_cover_the_graph() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let vertices: Vec<VgroupId> = (0..32).map(VgroupId::new).collect();
        let graph = HGraph::random(&vertices, 4, &mut rng);
        let hits = simulate_walk_hits(&graph, VgroupId::new(0), 10, 5_000, &mut rng);
        assert_eq!(hits.len(), 32);
        let total: u64 = hits.values().sum();
        assert_eq!(total, 5_000);
        // With rwl=10 on a dense small graph, every vertex should be hit.
        let unvisited = hits.values().filter(|&&c| c == 0).count();
        assert_eq!(unvisited, 0);
    }

    #[test]
    fn short_walks_are_visibly_non_uniform() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let vertices: Vec<VgroupId> = (0..64).map(VgroupId::new).collect();
        let graph = HGraph::random(&vertices, 2, &mut rng);
        let hits = simulate_walk_hits(&graph, VgroupId::new(0), 1, 10_000, &mut rng);
        // A walk of length 1 can only reach direct neighbours of the start.
        let reachable = hits.values().filter(|&&c| c > 0).count();
        assert!(reachable <= 2 * 2 + 1, "reachable {reachable}");
    }
}
