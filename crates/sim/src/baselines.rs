//! The two baselines of Figure 8: a classic round-based crash-tolerant gossip
//! protocol with global membership, and a flat synchronous SMR run across the
//! whole system.

use atum_types::Duration;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Result of a classic-gossip simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct GossipBaselineResult {
    /// Round in which each node was first infected (round 0 = origin).
    pub infection_round: Vec<u32>,
    /// Number of rounds until every node was infected.
    pub rounds_to_full_coverage: u32,
}

impl GossipBaselineResult {
    /// Per-node delivery latencies given a round duration.
    pub fn latencies(&self, round: Duration) -> Vec<Duration> {
        self.infection_round
            .iter()
            .map(|&r| Duration::from_micros(round.as_micros() * r as u64))
            .collect()
    }
}

/// Simulates a classic push-gossip dissemination: every round, every infected
/// node sends the message to `fanout` uniformly random nodes (global
/// membership view, no failures) — the first baseline of §6.1.3.
pub fn simulate_classic_gossip(n: usize, fanout: usize, seed: u64) -> GossipBaselineResult {
    assert!(n > 0);
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut infection_round = vec![u32::MAX; n];
    infection_round[0] = 0;
    let mut infected: Vec<usize> = vec![0];
    let mut round = 0u32;
    while infected.len() < n && round < 10_000 {
        round += 1;
        let currently_infected = infected.clone();
        for _ in &currently_infected {
            for _ in 0..fanout {
                let target = rng.gen_range(0..n);
                if infection_round[target] == u32::MAX {
                    infection_round[target] = round;
                    infected.push(target);
                }
            }
        }
    }
    GossipBaselineResult {
        rounds_to_full_coverage: round,
        infection_round,
    }
}

/// Latency of a flat synchronous Byzantine agreement across the whole system
/// (the second baseline of §6.1.3): `f + 1` rounds, where `f` is the number
/// of tolerated faults.
pub fn flat_smr_latency(tolerated_faults: usize, round: Duration) -> Duration {
    Duration::from_micros(round.as_micros() * (tolerated_faults as u64 + 1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gossip_covers_everyone_in_logarithmic_rounds() {
        let result = simulate_classic_gossip(850, 10, 1);
        assert!(result.infection_round.iter().all(|&r| r != u32::MAX));
        // log_10(850) ≈ 3; allow generous slack for the stochastic tail.
        assert!(
            result.rounds_to_full_coverage <= 8,
            "took {} rounds",
            result.rounds_to_full_coverage
        );
        let latencies = result.latencies(Duration::from_millis(1500));
        assert_eq!(latencies.len(), 850);
        assert_eq!(latencies.iter().filter(|l| l.as_micros() == 0).count(), 1);
    }

    #[test]
    fn higher_fanout_spreads_faster() {
        let slow = simulate_classic_gossip(1000, 2, 2);
        let fast = simulate_classic_gossip(1000, 20, 2);
        assert!(fast.rounds_to_full_coverage <= slow.rounds_to_full_coverage);
    }

    #[test]
    fn flat_smr_latency_matches_paper_example() {
        // 50 tolerated faults at 1.5 s rounds ≈ 76.5 s (the S.SMR point of
        // Figure 8).
        let latency = flat_smr_latency(50, Duration::from_millis(1500));
        assert_eq!(latency.as_millis(), 76_500);
    }
}
