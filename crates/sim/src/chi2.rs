//! Pearson's χ² goodness-of-fit test against the uniform distribution.
//!
//! The paper's Figure 4 guideline accepts a random-walk length as "optimal"
//! when, at confidence level 0.99, the χ² test cannot distinguish the
//! distribution of walk endpoints from a truly uniform distribution over the
//! vgroups. This module provides the statistic and the 0.99 critical value
//! (via the Wilson–Hilferty approximation, accurate to a fraction of a
//! percent for the degrees of freedom used here).

/// The χ² statistic of observed counts against a uniform expectation.
///
/// # Panics
///
/// Panics if `observed` is empty or all counts are zero.
pub fn chi2_statistic(observed: &[u64]) -> f64 {
    assert!(!observed.is_empty(), "need at least one category");
    let total: u64 = observed.iter().sum();
    assert!(total > 0, "need at least one observation");
    let expected = total as f64 / observed.len() as f64;
    observed
        .iter()
        .map(|&o| {
            let diff = o as f64 - expected;
            diff * diff / expected
        })
        .sum()
}

/// Approximate 0.99-quantile of the χ² distribution with `df` degrees of
/// freedom (Wilson–Hilferty).
pub fn chi2_critical_99(df: usize) -> f64 {
    let df = df.max(1) as f64;
    let z = 2.326_347_874; // Φ⁻¹(0.99)
    let term = 1.0 - 2.0 / (9.0 * df) + z * (2.0 / (9.0 * df)).sqrt();
    df * term * term * term
}

/// `true` when the observed counts are statistically indistinguishable from
/// uniform at confidence 0.99.
pub fn is_uniform_99(observed: &[u64]) -> bool {
    let df = observed.len().saturating_sub(1);
    if df == 0 {
        return true;
    }
    chi2_statistic(observed) <= chi2_critical_99(df)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn statistic_is_zero_for_perfectly_uniform_counts() {
        assert_eq!(chi2_statistic(&[10, 10, 10, 10]), 0.0);
    }

    #[test]
    fn critical_values_match_tables() {
        // Known values: df=1 → 6.635, df=10 → 23.209, df=100 → 135.807.
        assert!((chi2_critical_99(1) - 6.635).abs() < 0.35);
        assert!((chi2_critical_99(10) - 23.209).abs() < 0.25);
        assert!((chi2_critical_99(100) - 135.807).abs() < 0.6);
    }

    #[test]
    fn uniform_samples_pass_and_skewed_samples_fail() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let categories = 64usize;
        let mut uniform = vec![0u64; categories];
        for _ in 0..50_000 {
            uniform[rng.gen_range(0..categories)] += 1;
        }
        assert!(is_uniform_99(&uniform));

        // Heavily skewed: half the mass on one category.
        let mut skewed = vec![0u64; categories];
        for _ in 0..50_000 {
            let c = if rng.gen_bool(0.5) {
                0
            } else {
                rng.gen_range(0..categories)
            };
            skewed[c] += 1;
        }
        assert!(!is_uniform_99(&skewed));
    }

    #[test]
    fn single_category_is_trivially_uniform() {
        assert!(is_uniform_99(&[42]));
    }

    #[test]
    #[should_panic(expected = "observation")]
    fn all_zero_counts_panic() {
        chi2_statistic(&[0, 0, 0]);
    }
}
