//! Construction of standing Atum systems for experiments.
//!
//! Experiments that measure steady-state behaviour (broadcast latency,
//! AShare reads, AStream dissemination) need a system of N nodes already
//! organised into vgroups and an overlay — the state a long sequence of joins
//! converges to. [`ClusterBuilder`] constructs that state directly from
//! ground truth (`VgroupDirectory` + `HGraph`) and instantiates one
//! [`AtumNode`] per node on the simulator. Growth and churn experiments use
//! the real `join`/`leave` protocol on top of such a cluster (or from a
//! single bootstrap node).

use atum_core::{Application, AtumMessage, AtumNode, ByzantineBehavior};
use atum_crypto::KeyRegistry;
use atum_overlay::{CycleNeighbors, HGraph, NeighborTable, VgroupDirectory};
use atum_simnet::{NetConfig, Simulation};
use atum_types::{BroadcastId, Composition, Duration, NodeId, Params, VgroupId};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::sync::Arc;

/// A standing Atum system hosted on the simulator.
pub struct Cluster<A: Application> {
    /// The simulation hosting every node.
    pub sim: Simulation<AtumMessage, AtumNode<A>>,
    /// Ground-truth vgroup membership at construction time.
    pub directory: VgroupDirectory,
    /// Ground-truth overlay at construction time.
    pub hgraph: HGraph,
    /// Nodes marked Byzantine (heartbeat-only).
    pub byzantine: Vec<NodeId>,
    /// The shared key registry (covers spare identities for later joiners).
    pub registry: Arc<KeyRegistry>,
    /// The system parameters every node was configured with.
    pub params: Params,
    /// Identifiers of the initial members, sorted.
    pub initial_nodes: Vec<NodeId>,
}

// Manual so `A` needs no `Debug` bound.
impl<A: Application> std::fmt::Debug for Cluster<A> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cluster")
            .field("sim", &self.sim)
            .field("byzantine", &self.byzantine)
            .field("params", &self.params)
            .field("initial_nodes", &self.initial_nodes)
            .finish_non_exhaustive()
    }
}

impl<A: Application> Cluster<A> {
    /// Correct (non-Byzantine) initial members.
    pub fn correct_nodes(&self) -> Vec<NodeId> {
        self.initial_nodes
            .iter()
            .copied()
            .filter(|n| !self.byzantine.contains(n))
            .collect()
    }

    /// Number of nodes that currently consider themselves members (all
    /// hosted nodes, including joiners added after construction).
    pub fn member_count(&self) -> usize {
        self.sim
            .node_ids()
            .into_iter()
            .filter(|&id| self.sim.node(id).map(|n| n.is_member()).unwrap_or(false))
            .count()
    }

    /// Runs the simulation until at least `target` nodes are members or
    /// `timeout` of *simulated* time elapses; returns the final member
    /// count. Mirrors `NetCluster::wait_for_members`, which polls the wall
    /// clock instead.
    pub fn wait_for_members(&mut self, target: usize, timeout: Duration) -> usize {
        let deadline = self.sim.now() + timeout;
        loop {
            let count = self.member_count();
            if count >= target || self.sim.now() >= deadline {
                return count;
            }
            self.sim.run_for(Duration::from_millis(100));
        }
    }

    /// Broadcasts `payload` from `origin` and returns the broadcast
    /// identifier (for latency correlation), or `None` when the origin is
    /// unknown or not a member. Mirrors `NetCluster::broadcast_tracked`.
    ///
    /// `Simulation::call` is *scheduled*, not immediate, so this advances
    /// the simulation by one millisecond to execute the closure.
    pub fn broadcast_tracked(&mut self, origin: NodeId, payload: Vec<u8>) -> Option<BroadcastId> {
        let (tx, rx) = std::sync::mpsc::channel();
        self.sim.call(origin, move |n, ctx| {
            let _ = tx.send(n.broadcast(payload, ctx).ok());
        });
        self.sim.run_for(Duration::from_millis(1));
        rx.try_recv().ok().flatten()
    }
}

/// Builder for [`Cluster`].
#[derive(Debug, Clone)]
pub struct ClusterBuilder {
    n: usize,
    params: Params,
    net: NetConfig,
    seed: u64,
    byzantine: usize,
    target_group_size: Option<usize>,
    spare_identities: usize,
}

impl ClusterBuilder {
    /// Starts a builder for a system of `n` nodes.
    pub fn new(n: usize) -> Self {
        ClusterBuilder {
            n,
            params: Params::default(),
            net: NetConfig::lan(),
            seed: 42,
            byzantine: 0,
            target_group_size: None,
            spare_identities: 0,
        }
    }

    /// Sets the Atum parameters used by every node.
    pub fn params(mut self, params: Params) -> Self {
        self.params = params;
        self
    }

    /// Sets the network profile.
    pub fn net(mut self, net: NetConfig) -> Self {
        self.net = net;
        self
    }

    /// Sets the random seed (drives partitioning, the overlay and the
    /// simulator).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Marks `count` randomly chosen nodes as Byzantine (heartbeat-only).
    pub fn byzantine(mut self, count: usize) -> Self {
        self.byzantine = count;
        self
    }

    /// Overrides the initial vgroup size (default: midway between `gmin` and
    /// `gmax`).
    pub fn group_size(mut self, size: usize) -> Self {
        self.target_group_size = Some(size);
        self
    }

    /// Registers `count` additional identities (node ids `n..n+count`) in the
    /// key registry so growth/churn experiments can add new nodes later.
    pub fn spare_identities(mut self, count: usize) -> Self {
        self.spare_identities = count;
        self
    }

    /// Builds the cluster, creating each node's application with `make_app`.
    pub fn build<A: Application, F: FnMut(NodeId) -> A>(self, mut make_app: F) -> Cluster<A> {
        let ClusterBuilder {
            n,
            params,
            net,
            seed,
            byzantine,
            target_group_size,
            spare_identities,
        } = self;
        assert!(n > 0, "a cluster needs at least one node");
        params.validate().expect("invalid Atum parameters");

        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut registry = KeyRegistry::new();
        for i in 0..(n + spare_identities) as u64 {
            registry.register(NodeId::new(i), seed);
        }
        let registry = registry.shared();

        let nodes: Vec<NodeId> = (0..n as u64).map(NodeId::new).collect();
        let group_size = target_group_size
            .unwrap_or((params.gmin + params.gmax) / 2)
            .max(1);
        let directory = VgroupDirectory::partition(&nodes, group_size, &mut rng);
        let group_ids = directory.group_ids();
        let hgraph = HGraph::random(&group_ids, params.hc, &mut rng);

        // Local neighbour tables derived from the ground-truth overlay.
        let neighbor_table_of = |group: VgroupId| -> NeighborTable {
            let mut table = NeighborTable::new(params.hc);
            for cycle in 0..params.hc as usize {
                let pred = hgraph.predecessor(cycle, group).expect("member of graph");
                let succ = hgraph.successor(cycle, group).expect("member of graph");
                table.set_cycle(
                    cycle,
                    CycleNeighbors {
                        predecessor: pred,
                        predecessor_composition: directory
                            .composition(pred)
                            .expect("group exists")
                            .clone(),
                        successor: succ,
                        successor_composition: directory
                            .composition(succ)
                            .expect("group exists")
                            .clone(),
                    },
                );
            }
            table
        };

        let mut byz_nodes: Vec<NodeId> = nodes.clone();
        byz_nodes.shuffle(&mut rng);
        byz_nodes.truncate(byzantine.min(n));
        byz_nodes.sort_unstable();

        let mut sim: Simulation<AtumMessage, AtumNode<A>> = Simulation::new(net, seed);
        for group in &group_ids {
            let composition: Composition = directory.composition(*group).expect("exists").clone();
            let table = neighbor_table_of(*group);
            for node_id in composition.iter() {
                let mut node = AtumNode::with_membership(
                    node_id,
                    params.clone(),
                    registry.clone(),
                    make_app(node_id),
                    *group,
                    composition.clone(),
                    table.clone(),
                    0,
                );
                if byz_nodes.contains(&node_id) {
                    node.set_byzantine(ByzantineBehavior::HeartbeatOnly);
                }
                sim.add_node(node_id, node);
            }
        }

        Cluster {
            sim,
            directory,
            hgraph,
            byzantine: byz_nodes,
            registry,
            params,
            initial_nodes: nodes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atum_core::CollectingApp;
    use atum_types::Duration;

    #[test]
    fn builder_creates_consistent_ground_truth() {
        let params = Params::default()
            .with_group_bounds(3, 10)
            .with_overlay(3, 6);
        let cluster = ClusterBuilder::new(60)
            .params(params)
            .seed(7)
            .byzantine(5)
            .build(|_| CollectingApp::new());
        assert_eq!(cluster.initial_nodes.len(), 60);
        assert_eq!(cluster.byzantine.len(), 5);
        assert_eq!(cluster.correct_nodes().len(), 55);
        cluster.directory.check_invariants().unwrap();
        cluster.hgraph.check_invariants().unwrap();
        assert_eq!(
            cluster.hgraph.vertex_count(),
            cluster.directory.group_count()
        );
        assert_eq!(cluster.member_count(), 60);
    }

    #[test]
    fn broadcast_on_built_cluster_reaches_correct_nodes() {
        let params = Params::default()
            .with_group_bounds(2, 8)
            .with_overlay(3, 5)
            .with_round(Duration::from_millis(250));
        let mut cluster = ClusterBuilder::new(30)
            .params(params)
            .seed(3)
            .build(|_| CollectingApp::new());
        let origin = cluster.initial_nodes[4];
        cluster.sim.call(origin, |n, ctx| {
            n.broadcast(b"cluster-wide".to_vec(), ctx).unwrap();
        });
        cluster.sim.run_for(Duration::from_secs(40));
        let mut delivered = 0;
        for id in cluster.correct_nodes() {
            let node = cluster.sim.node(id).unwrap();
            if node
                .app()
                .delivered_payloads()
                .iter()
                .any(|p| p == b"cluster-wide")
            {
                delivered += 1;
            }
        }
        assert_eq!(delivered, cluster.correct_nodes().len());
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn zero_node_cluster_is_rejected() {
        ClusterBuilder::new(0).build(|_| CollectingApp::new());
    }

    #[test]
    fn tracked_broadcast_returns_an_id_and_delivers() {
        // The unified harness surface: `wait_for_members` +
        // `broadcast_tracked` behave like their NetCluster counterparts.
        let params = Params::default()
            .with_group_bounds(2, 8)
            .with_overlay(3, 5)
            .with_round(Duration::from_millis(250));
        let mut cluster = ClusterBuilder::new(12)
            .params(params)
            .seed(8)
            .build(|_| CollectingApp::new());
        assert_eq!(cluster.wait_for_members(12, Duration::from_secs(1)), 12);
        let origin = cluster.initial_nodes[2];
        let id = cluster
            .broadcast_tracked(origin, b"tracked".to_vec())
            .expect("origin is a member");
        assert_eq!(id.origin, origin);
        cluster.sim.run_for(Duration::from_secs(40));
        for node_id in cluster.correct_nodes() {
            let node = cluster.sim.node(node_id).unwrap();
            assert!(node
                .app()
                .delivered_payloads()
                .iter()
                .any(|p| p == b"tracked"));
        }
    }
}
