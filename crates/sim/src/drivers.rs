//! Workload drivers for the paper's experiments: growth (Fig. 6), churn
//! (Fig. 7), broadcast latency (Fig. 8) and exchange completion (Fig. 13).

use crate::cluster::Cluster;
use crate::metrics::{LatencyHistogram, LatencySeries};
use atum_core::{Application, AtumMessage, AtumNode, CollectingApp, NodePhase};
use atum_crypto::KeyRegistry;
use atum_simnet::{NetConfig, Simulation};
use atum_types::{BroadcastId, Duration, Instant, NodeId, Params};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::collections::HashMap;

// --------------------------------------------------------------- broadcasts

/// Result of a broadcast-latency workload (Figure 8).
#[derive(Debug, Clone, Default)]
pub struct BroadcastWorkloadReport {
    /// Delivery latencies across all (correct node, broadcast) pairs.
    pub latencies: LatencySeries,
    /// Deliveries that should have happened (correct nodes × broadcasts).
    pub expected_deliveries: usize,
    /// Deliveries observed.
    pub observed_deliveries: usize,
    /// Mean number of overlay hops per delivery.
    pub mean_hops: f64,
}

impl BroadcastWorkloadReport {
    /// Fraction of expected deliveries that occurred.
    pub fn delivery_ratio(&self) -> f64 {
        if self.expected_deliveries == 0 {
            1.0
        } else {
            self.observed_deliveries as f64 / self.expected_deliveries as f64
        }
    }
}

/// Publishes `broadcasts` messages of `payload_size` bytes from random
/// correct nodes, one every `gap`, then lets the system settle and collects
/// the delivery latency of every (node, broadcast) pair.
pub fn run_broadcast_workload<A: Application>(
    cluster: &mut Cluster<A>,
    broadcasts: usize,
    payload_size: usize,
    gap: Duration,
    settle: Duration,
    seed: u64,
) -> BroadcastWorkloadReport {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let correct = cluster.correct_nodes();
    assert!(!correct.is_empty(), "need at least one correct node");
    let start = cluster.sim.now() + Duration::from_secs(1);

    // Assign publishers and remember the send time of every broadcast id.
    let mut send_times: HashMap<BroadcastId, Instant> = HashMap::new();
    let mut per_origin_seq: HashMap<NodeId, u64> = HashMap::new();
    for i in 0..broadcasts {
        let publisher = *correct.choose(&mut rng).expect("non-empty");
        let seq = per_origin_seq.entry(publisher).or_insert(0);
        let id = BroadcastId::new(publisher, *seq);
        *seq += 1;
        let at = start + Duration::from_micros(gap.as_micros() * i as u64);
        send_times.insert(id, at);
        let payload = vec![0x5au8; payload_size];
        cluster.sim.call_at(at, publisher, move |node, ctx| {
            let _ = node.broadcast(payload, ctx);
        });
    }

    let total = Duration::from_micros(gap.as_micros() * broadcasts as u64) + settle;
    cluster.sim.run_for(Duration::from_secs(1) + total);

    let mut report = BroadcastWorkloadReport {
        expected_deliveries: correct.len() * send_times.len(),
        ..BroadcastWorkloadReport::default()
    };
    let mut hops_total = 0u64;
    for node_id in &correct {
        let Some(node) = cluster.sim.node(*node_id) else {
            continue;
        };
        let Some(member) = node.member() else {
            continue;
        };
        for (id, at, hops) in &member.stats.delivered {
            if let Some(sent) = send_times.get(id) {
                report.observed_deliveries += 1;
                report.latencies.push(at.saturating_since(*sent));
                hops_total += *hops as u64;
            }
        }
    }
    report.mean_hops = if report.observed_deliveries == 0 {
        0.0
    } else {
        hops_total as f64 / report.observed_deliveries as f64
    };
    report
}

// ------------------------------------------------------------------- growth

/// Result of a growth run (Figures 6 and 13).
#[derive(Debug, Clone, Default)]
pub struct GrowthReport {
    /// (simulated seconds, number of nodes that are members) samples.
    pub size_over_time: Vec<(f64, usize)>,
    /// Shuffle exchanges completed across all vgroups.
    pub exchanges_completed: u64,
    /// Shuffle exchanges suppressed (partner unavailable).
    pub exchanges_suppressed: u64,
    /// Whether the target size was reached within the time budget.
    pub reached_target: bool,
    /// Simulated time at the end of the run.
    pub elapsed_secs: f64,
    /// Simulator events processed over the run (perf-trajectory numerator).
    pub events_processed: u64,
}

impl GrowthReport {
    /// Fraction of completed exchanges among all that finished either way
    /// (the y-axis of Figure 13).
    pub fn exchange_completion_rate(&self) -> f64 {
        let finished = self.exchanges_completed + self.exchanges_suppressed;
        if finished == 0 {
            1.0
        } else {
            self.exchanges_completed as f64 / finished as f64
        }
    }
}

/// Grows a system from a single bootstrap node to `target` nodes by joining
/// `join_rate_fraction` of the current system size per simulated minute
/// (8 % in §6.1.1; 20 % and 24 % in Figure 13).
pub fn run_growth(
    params: Params,
    net: NetConfig,
    seed: u64,
    target: usize,
    join_rate_fraction: f64,
    max_sim: Duration,
) -> GrowthReport {
    assert!(target >= 1);
    let mut registry = KeyRegistry::new();
    for i in 0..target as u64 {
        registry.register(NodeId::new(i), seed);
    }
    let registry = registry.shared();
    let mut sim: Simulation<AtumMessage, AtumNode<CollectingApp>> = Simulation::new(net, seed);
    for i in 0..target as u64 {
        let node = AtumNode::new(
            NodeId::new(i),
            params.clone(),
            registry.clone(),
            CollectingApp::new(),
        );
        sim.add_node(NodeId::new(i), node);
    }
    sim.call(NodeId::new(0), |n, ctx| {
        n.bootstrap(ctx).expect("bootstrap succeeds")
    });
    sim.run_for(Duration::from_secs(1));

    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xfeed);
    let check_interval = Duration::from_secs(10);
    let mut report = GrowthReport::default();
    let mut next_to_join: u64 = 1;
    let deadline = sim.now() + max_sim;

    loop {
        // Count members and record the growth curve.
        let members: Vec<NodeId> = (0..target as u64)
            .map(NodeId::new)
            .filter(|&id| sim.node(id).map(|n| n.is_member()).unwrap_or(false))
            .collect();
        report
            .size_over_time
            .push((sim.now().as_secs_f64(), members.len()));
        if members.len() >= target || sim.now() >= deadline {
            report.reached_target = members.len() >= target;
            break;
        }
        // Launch joins for this interval: rate × size × interval / 60.
        let per_interval =
            (join_rate_fraction * members.len() as f64 * check_interval.as_secs_f64() / 60.0)
                .ceil()
                .max(1.0) as u64;
        for _ in 0..per_interval {
            if next_to_join >= target as u64 {
                break;
            }
            let joiner = NodeId::new(next_to_join);
            next_to_join += 1;
            let contact = *members
                .choose(&mut rng)
                .expect("at least the bootstrap node");
            sim.call(joiner, move |n, ctx| {
                let _ = n.join(contact, ctx);
            });
        }
        sim.run_for(check_interval);
    }

    // Collect exchange statistics across every member.
    for i in 0..target as u64 {
        if let Some(member) = sim.node(NodeId::new(i)).and_then(|n| n.member()) {
            let stats = member.exchange_stats();
            report.exchanges_completed += stats.completed;
            report.exchanges_suppressed += stats.suppressed;
        }
    }
    // End-of-run diagnosis (`ATUM_TRACE=growth`, or the legacy
    // `ATUM_DEBUG_GROWTH` alias): one `growth` event per non-member and one
    // per distinct vgroup. The single armed check keeps the whole sweep off
    // the disabled path.
    if atum_obs::trace::armed(atum_obs::EventKind::Growth) {
        let mut seen_groups = std::collections::BTreeSet::new();
        for i in 0..target as u64 {
            let Some(node) = sim.node(NodeId::new(i)) else {
                continue;
            };
            match node.member() {
                None => {
                    atum_obs::trace_event!(
                        Growth,
                        at = sim.now().as_micros(),
                        node = i,
                        slots = [0, 0, 0],
                        "non-member n{i}: phase {:?}",
                        node.phase()
                    );
                }
                Some(member) => {
                    if seen_groups.insert(member.vgroup) {
                        let live = member.presumed_live(sim.now());
                        atum_obs::trace_event!(
                            Growth,
                            at = sim.now().as_micros(),
                            node = i,
                            slots = [
                                member.vgroup.raw(),
                                member.composition.len() as u64,
                                live.len() as u64
                            ],
                            "vgroup {:?} (per n{i}): size {} presumed_live {} epoch {} engine_running {}",
                            member.vgroup,
                            member.composition.len(),
                            live.len(),
                            member.epoch,
                            member.engine_running(),
                        );
                    }
                }
            }
        }
    }
    report.elapsed_secs = sim.now().as_secs_f64();
    report.events_processed = sim.stats().events_processed;
    report
}

// -------------------------------------------------------------------- churn

/// One leave/re-join cycle of a churn run.
#[derive(Debug, Clone)]
pub struct ChurnCycle {
    /// The node that left and re-joined.
    pub victim: NodeId,
    /// Simulated time (seconds) the leave was requested.
    pub left_at_secs: f64,
    /// Simulated time (seconds) of the first re-join attempt.
    pub rejoin_at_secs: f64,
    /// Simulated time (seconds) the victim was a full member again, if it
    /// made it back before the end of the run.
    pub completed_at_secs: Option<f64>,
}

/// Phase breakdown of the churn cycles that did not complete: where the
/// victim was stuck when the run ended.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StallBreakdown {
    /// Out of the system entirely (abandoned with no live contact, or its
    /// re-join attempts were all refused).
    pub left: usize,
    /// A join attempt was still in flight.
    pub joining: usize,
    /// Waiting for the welcome of a shuffle-transfer target vgroup.
    pub awaiting_transfer: usize,
}

impl StallBreakdown {
    /// Total stalled cycles.
    pub fn total(&self) -> usize {
        self.left + self.joining + self.awaiting_transfer
    }
}

/// Classification of the ghost entries left at the end of a churn run.
///
/// A ghost is a composition entry (at one representative member per vgroup)
/// whose node is not actually a member of that vgroup. Ghosts in a vgroup
/// that still has at least two live correct members are *healable*: the
/// eviction machinery (which requires corroboration from at least two
/// distinct accusers before the suspected-entry discount applies) can still
/// decide the evictions, so any such residue is a liveness bug. Ghosts in a
/// vgroup with fewer than two live correct members are **unhealable by
/// construction** — one correct member can never corroborate an accusation,
/// so the composition is wedged by the fault model, not by the protocol
/// (e.g. PR 3's residual case: 1 correct + 2 Byzantine + 2 dead in a
/// 5-entry composition).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GhostAudit {
    /// Total ghost entries across the audited vgroups.
    pub entries: usize,
    /// Ghost entries in vgroups that cannot heal by construction (< 2 live
    /// correct members remain).
    pub unhealable: usize,
    /// Number of vgroups carrying at least one ghost entry.
    pub vgroups_with_ghosts: usize,
}

impl GhostAudit {
    /// Ghost entries the protocol could still have healed — the quantity
    /// that must be zero after a recovered churn run.
    pub fn healable(&self) -> usize {
        self.entries - self.unhealable
    }
}

/// Result of a churn run (Figure 7).
#[derive(Debug, Clone, Default)]
pub struct ChurnReport {
    /// Leave/rejoin cycles attempted.
    pub attempted: usize,
    /// Nodes that were members again by the end of the run.
    pub completed: usize,
    /// Members at the end of the run.
    pub final_members: usize,
    /// The churn rate that was applied (re-joins per minute).
    pub rate_per_minute: f64,
    /// Per-cycle records (victim, leave/rejoin/completion times).
    pub cycles: Vec<ChurnCycle>,
    /// Leave-to-member-again latency of every completed cycle.
    pub rejoin_latencies: LatencySeries,
    /// The same latencies in stable histogram buckets (for the bench JSON).
    pub rejoin_histogram: LatencyHistogram,
    /// Where the uncompleted cycles were stuck at the end of the run.
    pub stalls: StallBreakdown,
    /// Composition entries (across one representative member per vgroup)
    /// whose node is not actually a member of that vgroup at the end of the
    /// run. A healthy recovery leaves zero *healable* ones (see
    /// [`ChurnReport::ghost_audit`]).
    pub ghost_entries: usize,
    /// The same entries classified by whether their vgroup could still have
    /// healed them.
    pub ghost_audit: GhostAudit,
    /// Simulator events processed over the run (perf-trajectory numerator).
    pub events_processed: u64,
}

impl ChurnReport {
    /// Fraction of churn cycles that completed.
    pub fn completion_ratio(&self) -> f64 {
        if self.attempted == 0 {
            1.0
        } else {
            self.completed as f64 / self.attempted as f64
        }
    }

    /// Whether the system sustained the churn (≥ 90 % of cycles completed and
    /// the population did not collapse).
    pub fn sustained(&self, initial: usize) -> bool {
        self.completion_ratio() >= 0.9 && self.final_members * 10 >= initial * 9
    }
}

/// Continuously removes and re-joins nodes of a standing cluster at
/// `rate_per_minute` re-joins per minute for `duration`, then reports how
/// many cycles completed (the paper's §6.1.2 methodology: nodes have session
/// times of a few minutes and re-join after leaving).
pub fn run_churn(
    cluster: &mut Cluster<CollectingApp>,
    rate_per_minute: f64,
    duration: Duration,
    rejoin_pause: Duration,
    seed: u64,
) -> ChurnReport {
    assert!(rate_per_minute > 0.0);
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xc0ffee);
    let interval = Duration::from_secs_f64(60.0 / rate_per_minute);
    let start = cluster.sim.now();
    let mut report = ChurnReport {
        rate_per_minute,
        ..ChurnReport::default()
    };

    let correct = cluster.correct_nodes();
    let mut churned: Vec<(NodeId, Instant, Instant)> = Vec::new();
    let deadline = start + duration;
    cluster.sim.run_for(Duration::from_secs(2));
    // Advance the simulation one churn interval at a time so every victim
    // and contact can be chosen among the nodes that are members *now* (a
    // re-joining node in a deployment contacts a node that is actually
    // reachable, e.g. out of a directory of current members).
    while cluster.sim.now() < deadline {
        let members: Vec<NodeId> = correct
            .iter()
            .copied()
            .filter(|&n| {
                cluster
                    .sim
                    .node(n)
                    .map(|node| node.is_member())
                    .unwrap_or(false)
            })
            .collect();
        let candidates: Vec<NodeId> = members
            .iter()
            .copied()
            .filter(|n| !churned.iter().any(|(v, _, _)| v == n))
            .collect();
        if let Some(&victim) = candidates.choose(&mut rng) {
            let contacts: Vec<NodeId> = members.iter().copied().filter(|&n| n != victim).collect();
            if let Some(&contact) = contacts.choose(&mut rng) {
                churned.push((victim, cluster.sim.now(), cluster.sim.now() + rejoin_pause));
                report.attempted += 1;
                cluster.sim.call(victim, |n, ctx| {
                    let _ = n.leave(ctx);
                });
                // The rejoin is attempted a few times with distinct contacts:
                // the first attempt can race the (asynchronous) leave — the
                // `Leave` op may not have been decided yet, in which case
                // `join` refuses with `AlreadyJoined` — and a single contact
                // can sit in a degraded vgroup. Extra attempts are no-ops
                // once the node is back in (`join` only acts from
                // `Idle`/`Left`), so retrying models a user that simply
                // tries again.
                let rejoin_at = cluster.sim.now() + rejoin_pause;
                for attempt in 0..3u64 {
                    let contact = *contacts.choose(&mut rng).unwrap_or(&contact);
                    let at = rejoin_at + Duration::from_secs(20 * attempt);
                    cluster.sim.call_at(at, victim, move |n, ctx| {
                        let _ = n.join(contact, ctx);
                    });
                }
            }
        }
        cluster.sim.run_for(interval);
    }

    // Drain long enough for the *last* cycles to finish their whole
    // recovery pipeline: a victim's final rejoin attempt fires up to 40 s
    // after its leave, and the stale entry it leaves behind needs a full
    // failure-detection window plus agreement to be evicted. On top of
    // that, a member stranded as the lone survivor of a wedged vgroup only
    // abandons it after a further two windows of declared isolation, then
    // re-joins and its stale entries need their own eviction round — so
    // the full recovery chain spans several windows. Auditing before
    // quiescence would report in-flight recoveries as ghosts.
    let eviction_window = cluster
        .params
        .heartbeat_period
        .saturating_mul(cluster.params.eviction_threshold as u64);
    let drain = Duration::from_secs(60) + eviction_window.saturating_mul(16);
    cluster.sim.run_until(deadline + drain);

    // Per-cycle outcomes: a cycle completed if the victim is a member now;
    // its completion time is the moment it last became one (`joined_at` is
    // refreshed on every non-member-to-member transition).
    for &(victim, left_at, rejoin_at) in &churned {
        let node = cluster.sim.node(victim);
        let is_member = node.map(|n| n.is_member()).unwrap_or(false);
        let completed_at = node
            .and_then(|n| n.stats.joined_at)
            .filter(|&t| is_member && t >= left_at);
        let cycle = ChurnCycle {
            victim,
            left_at_secs: left_at.as_secs_f64(),
            rejoin_at_secs: rejoin_at.as_secs_f64(),
            completed_at_secs: completed_at.map(|t| t.as_secs_f64()),
        };
        if let Some(t) = completed_at {
            report.completed += 1;
            let latency = t.saturating_since(left_at);
            report.rejoin_latencies.push(latency);
            report.rejoin_histogram.record(latency);
        } else {
            match node.map(|n| n.phase()) {
                Some(NodePhase::Joining { .. }) => report.stalls.joining += 1,
                Some(NodePhase::AwaitingTransfer) => report.stalls.awaiting_transfer += 1,
                _ => report.stalls.left += 1,
            }
        }
        report.cycles.push(cycle);
    }
    report.ghost_audit = ghost_audit(cluster, &correct, &churned);
    report.ghost_entries = report.ghost_audit.entries;
    report.final_members = cluster.member_count();
    report.events_processed = cluster.sim.stats().events_processed;
    report
}

/// Audits composition entries (one representative member per vgroup) whose
/// node is not actually a member of that vgroup, classifying each ghost by
/// whether its vgroup could still have healed it (see [`GhostAudit`]);
/// optionally dumps the diagnosis as `churn` trace events
/// (`ATUM_TRACE=churn`, or the legacy `ATUM_DEBUG_CHURN` alias).
fn ghost_audit(
    cluster: &Cluster<CollectingApp>,
    correct: &[NodeId],
    churned: &[(NodeId, Instant, Instant)],
) -> GhostAudit {
    let debug = atum_obs::trace::armed(atum_obs::EventKind::Churn);
    let now_us = cluster.sim.now().as_micros();
    if debug {
        for &n in correct {
            if let Some(node) = cluster.sim.node(n) {
                if !node.is_member() {
                    atum_obs::trace_event!(
                        Churn,
                        at = now_us,
                        node = n.raw(),
                        slots = [0, 0, 0],
                        "non-member {n}: churned={} phase {:?}",
                        churned.iter().any(|(v, _, _)| *v == n),
                        node.phase()
                    );
                }
            }
        }
    }
    let mut seen_groups = std::collections::BTreeSet::new();
    let mut audit = GhostAudit::default();
    for &n in correct {
        let Some(member) = cluster.sim.node(n).and_then(|node| node.member()) else {
            continue;
        };
        if !seen_groups.insert(member.vgroup) {
            continue;
        }
        let ghosts: Vec<NodeId> = member
            .composition
            .iter()
            .filter(|&p| {
                cluster
                    .sim
                    .node(p)
                    .map(|other| other.member().map(|m| m.vgroup) != Some(member.vgroup))
                    .unwrap_or(true)
            })
            .collect();
        audit.entries += ghosts.len();
        if !ghosts.is_empty() {
            audit.vgroups_with_ghosts += 1;
            // Eviction corroboration needs at least two distinct live
            // correct accusers; with fewer, the residue is unhealable by
            // construction (Byzantine heartbeat-only entries never accuse,
            // ghosts cannot).
            let live_correct = member
                .composition
                .iter()
                .filter(|&p| !ghosts.contains(&p) && !cluster.byzantine.contains(&p))
                .count();
            if live_correct < 2 {
                audit.unhealable += ghosts.len();
            }
        }
        if debug {
            atum_obs::trace_event!(
                Churn,
                at = now_us,
                node = n.raw(),
                slots = [
                    member.vgroup.raw(),
                    member.composition.len() as u64,
                    ghosts.len() as u64
                ],
                "vgroup {:?} (per {n}): size {} ghosts {:?} epoch {} engine_running {}",
                member.vgroup,
                member.composition.len(),
                ghosts,
                member.epoch,
                member.engine_running(),
            );
            if !ghosts.is_empty() {
                for (peer, silence, activated, accusations) in
                    member.liveness_snapshot(cluster.sim.now())
                {
                    atum_obs::trace_event!(
                        Churn,
                        at = now_us,
                        node = peer.raw(),
                        slots = [member.vgroup.raw(), accusations as u64, 0],
                        "    peer {peer}: silent {silence:.1}s activated {activated} accusations {accusations}"
                    );
                }
                for f in member.composition.iter().filter(|p| !ghosts.contains(p)) {
                    if let Some(fm) = cluster.sim.node(f).and_then(|node| node.member()) {
                        atum_obs::trace_event!(
                            Churn,
                            at = now_us,
                            node = f.raw(),
                            slots = [fm.vgroup.raw(), fm.composition.len() as u64, fm.epoch],
                            "    live member {f}: vgroup {:?} epoch {} engine_running {} comp {}",
                            fm.vgroup,
                            fm.epoch,
                            fm.engine_running(),
                            fm.composition
                        );
                    }
                }
            }
        }
    }
    audit
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::ClusterBuilder;

    fn fast_params() -> Params {
        Params::default()
            .with_round(Duration::from_millis(250))
            .with_group_bounds(2, 8)
            .with_overlay(2, 4)
    }

    #[test]
    fn broadcast_workload_measures_latencies() {
        let mut cluster = ClusterBuilder::new(20)
            .params(fast_params())
            .seed(5)
            .build(|_| CollectingApp::new());
        let report = run_broadcast_workload(
            &mut cluster,
            4,
            100,
            Duration::from_secs(2),
            Duration::from_secs(30),
            9,
        );
        assert_eq!(report.expected_deliveries, 20 * 4);
        assert_eq!(report.observed_deliveries, report.expected_deliveries);
        assert!((report.delivery_ratio() - 1.0).abs() < 1e-9);
        assert!(report.latencies.mean() > 0.0);
        assert!(report.mean_hops > 0.0);
    }

    #[test]
    fn growth_from_bootstrap_reaches_small_target() {
        let report = run_growth(
            fast_params().with_group_bounds(1, 8),
            NetConfig::lan(),
            11,
            6,
            0.5,
            Duration::from_secs(900),
        );
        assert!(report.reached_target, "curve: {:?}", report.size_over_time);
        assert!(report.size_over_time.last().unwrap().1 >= 6);
        // Size is non-decreasing over time.
        for w in report.size_over_time.windows(2) {
            assert!(w[1].1 >= w[0].1);
        }
        // A single-vgroup system can only self-exchange, which is always
        // suppressed; the rate must simply be well defined.
        let rate = report.exchange_completion_rate();
        assert!((0.0..=1.0).contains(&rate));
    }

    #[test]
    fn growth_past_gmax_splits_and_completes_exchanges() {
        // Growing past gmax forces a split; with several vgroups in the
        // overlay, shuffle exchanges are between distinct vgroups and can
        // genuinely complete (the Fig. 13 quantity).
        let report = run_growth(
            fast_params().with_group_bounds(1, 6),
            NetConfig::lan(),
            19,
            14,
            0.5,
            Duration::from_secs(1800),
        );
        assert!(report.reached_target, "curve: {:?}", report.size_over_time);
        assert!(
            report.exchanges_completed > 0,
            "no exchange completed (suppressed: {})",
            report.exchanges_suppressed
        );
    }

    #[test]
    fn churn_cycles_complete_at_modest_rate() {
        let mut cluster = ClusterBuilder::new(16)
            .params(fast_params())
            .seed(13)
            .spare_identities(4)
            .build(|_| CollectingApp::new());
        let initial = cluster.member_count();
        let report = run_churn(
            &mut cluster,
            2.0,
            Duration::from_secs(120),
            Duration::from_secs(5),
            3,
        );
        assert!(report.attempted >= 3, "attempted {}", report.attempted);
        // Sustained concurrent churn is the hardest regime for the
        // reproduction (see DESIGN.md §5): require progress, not perfection.
        assert!(
            report.completed >= 1,
            "completed {}/{}",
            report.completed,
            report.attempted
        );
        assert!(report.final_members >= initial / 2);
        let _ = report.sustained(initial);
    }
}
