//! Experiment harness for the Atum reproduction: cluster construction, fault
//! injection, workload drivers, metrics and the statistical tests used by the
//! paper's evaluation (§6).
//!
//! The harness drives `atum-core` nodes over the `atum-simnet` simulator.
//! Every experiment binary in `atum-bench` is a thin wrapper around the
//! pieces in this crate:
//!
//! * [`ClusterBuilder`] — build a standing system of N nodes partitioned into
//!   vgroups connected by a random H-graph (what a long sequence of joins
//!   would converge to), optionally with Byzantine members;
//! * [`drivers`] — growth (Fig. 6), churn (Fig. 7), broadcast latency
//!   (Fig. 8) and exchange-completion (Fig. 13) drivers;
//! * [`baselines`] — the classic gossip simulation and the flat
//!   synchronous-SMR latency model the paper compares against in Fig. 8;
//! * [`metrics`] — CDFs, percentiles and series formatting;
//! * [`chi2`] — Pearson's χ² uniformity test used to derive the Figure 4
//!   configuration guideline.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod baselines;
pub mod chi2;
pub mod cluster;
pub mod drivers;
pub mod metrics;

pub use baselines::{flat_smr_latency, simulate_classic_gossip, GossipBaselineResult};
pub use chi2::{chi2_critical_99, chi2_statistic, is_uniform_99};
pub use cluster::{Cluster, ClusterBuilder};
pub use drivers::{
    run_broadcast_workload, run_churn, run_growth, BroadcastWorkloadReport, ChurnCycle,
    ChurnReport, GhostAudit, GrowthReport, StallBreakdown,
};
pub use metrics::{percentile, LatencyHistogram, LatencySeries, DEFAULT_LATENCY_BUCKETS};
