//! Latency series, percentiles and CDFs for experiment reporting.
//!
//! The fixed-bucket [`LatencyHistogram`] now lives in `atum-obs` (both
//! runtimes and the bench pipeline share it); it is re-exported here so
//! existing `atum_sim::metrics` users keep compiling.

use atum_types::Duration;
use serde::{Deserialize, Serialize};

pub use atum_obs::{LatencyHistogram, DEFAULT_LATENCY_BUCKETS};

/// A collection of latency samples with CDF/percentile helpers.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct LatencySeries {
    samples: Vec<f64>,
    sorted: bool,
}

impl LatencySeries {
    /// Creates an empty series.
    pub fn new() -> Self {
        LatencySeries::default()
    }

    /// Adds a sample in seconds.
    pub fn push_secs(&mut self, secs: f64) {
        self.samples.push(secs);
        self.sorted = false;
    }

    /// Adds a [`Duration`] sample.
    pub fn push(&mut self, d: Duration) {
        self.push_secs(d.as_secs_f64());
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// `true` when the series has no samples.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    fn sorted_samples(&mut self) -> &[f64] {
        if !self.sorted {
            self.samples
                .sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
            self.sorted = true;
        }
        &self.samples
    }

    /// The p-th percentile (0–100) in seconds.
    pub fn percentile(&mut self, p: f64) -> f64 {
        percentile(self.sorted_samples(), p)
    }

    /// Mean in seconds (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.samples.iter().sum::<f64>() / self.samples.len() as f64
        }
    }

    /// Maximum sample in seconds (0.0 when empty).
    pub fn max(&self) -> f64 {
        self.samples.iter().copied().fold(0.0, f64::max)
    }

    /// CDF evaluated at the given thresholds: fraction of samples ≤ each
    /// threshold (the series plotted in Figure 8).
    pub fn cdf_at(&mut self, thresholds: &[f64]) -> Vec<(f64, f64)> {
        let sorted = self.sorted_samples();
        let n = sorted.len().max(1) as f64;
        thresholds
            .iter()
            .map(|&t| {
                let count = sorted.partition_point(|&s| s <= t);
                (t, count as f64 / n)
            })
            .collect()
    }
}

/// The p-th percentile (0–100) of a **sorted** slice.
pub fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = (p.clamp(0.0, 100.0) / 100.0) * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = rank - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_and_mean() {
        let mut s = LatencySeries::new();
        for v in [4.0, 1.0, 3.0, 2.0, 5.0] {
            s.push_secs(v);
        }
        assert_eq!(s.len(), 5);
        assert!((s.mean() - 3.0).abs() < 1e-9);
        assert!((s.percentile(0.0) - 1.0).abs() < 1e-9);
        assert!((s.percentile(50.0) - 3.0).abs() < 1e-9);
        assert!((s.percentile(100.0) - 5.0).abs() < 1e-9);
        assert!((s.percentile(25.0) - 2.0).abs() < 1e-9);
        assert!((s.max() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn duration_samples_and_cdf() {
        let mut s = LatencySeries::new();
        for ms in [100u64, 200, 300, 400] {
            s.push(Duration::from_millis(ms));
        }
        let cdf = s.cdf_at(&[0.05, 0.25, 0.45]);
        assert_eq!(cdf.len(), 3);
        assert!((cdf[0].1 - 0.0).abs() < 1e-9);
        assert!((cdf[1].1 - 0.5).abs() < 1e-9);
        assert!((cdf[2].1 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_series_is_well_behaved() {
        let mut s = LatencySeries::new();
        assert!(s.is_empty());
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.percentile(50.0), 0.0);
        assert_eq!(s.max(), 0.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
    }
}
