//! The discrete-event simulation engine.

use crate::latency::{NetConfig, Region};
use crate::node::{Context, ContextEffects, Node, OutboundMessage, TimerRequest};
use crate::stats::NetStats;
use atum_types::{Duration, Instant, NodeId, WireSize};
use rand::{Rng, RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, HashSet};

/// Boxed external call executed against a node by the harness.
type NodeCall<M, N> = Box<dyn FnOnce(&mut N, &mut Context<'_, M>) + Send>;

/// Type of a queued event.
enum EventKind<M, N> {
    /// Deliver a message.
    Deliver {
        from: NodeId,
        to: NodeId,
        msg: M,
        size: usize,
    },
    /// Fire a timer at a node.
    Timer { node: NodeId, tag: u64, handle: u64 },
    /// Run an external call against a node (harness-driven API invocation).
    Call { node: NodeId, f: NodeCall<M, N> },
    /// Start a node (runs `on_start`).
    Start { node: NodeId },
}

struct QueuedEvent<M, N> {
    at: Instant,
    seq: u64,
    kind: EventKind<M, N>,
}

// Ordering for the BinaryHeap (via Reverse): earliest time first, then FIFO.
impl<M, N> PartialEq for QueuedEvent<M, N> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<M, N> Eq for QueuedEvent<M, N> {}
impl<M, N> PartialOrd for QueuedEvent<M, N> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M, N> Ord for QueuedEvent<M, N> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

struct NodeSlot<N> {
    node: N,
    rng: ChaCha8Rng,
    region: Region,
    crashed: bool,
    halted: bool,
}

/// The discrete-event simulator.
///
/// `M` is the message type exchanged between nodes, `N` the node (actor)
/// type. The engine is generic so that protocol crates can run their own
/// small actors in unit tests and the full Atum node in system tests, all on
/// the same substrate.
pub struct Simulation<M, N> {
    config: NetConfig,
    nodes: HashMap<NodeId, NodeSlot<N>>,
    queue: BinaryHeap<Reverse<QueuedEvent<M, N>>>,
    now: Instant,
    seq: u64,
    timer_handles: u64,
    /// Handles of timers whose fire event is in the queue and has not been
    /// cancelled. A fired event whose handle is absent was cancelled. This
    /// is inverted from the obvious "set of cancelled handles" design on
    /// purpose: a cancelled-set entry whose event already fired (or whose
    /// node crashed or was removed before the event drained) would never be
    /// purged and the set grew for the lifetime of long churn runs, while
    /// the pending set is bounded by the number of in-flight timer events.
    pending_timers: HashSet<u64>,
    partitions: Vec<(HashSet<NodeId>, HashSet<NodeId>)>,
    /// Per-destination loss probability (overrides the global
    /// `NetConfig::loss_probability` for messages towards that node).
    peer_loss: HashMap<NodeId, f64>,
    stats: NetStats,
    rng: ChaCha8Rng,
    seed: u64,
    /// Effect buffers recycled across `with_context` calls so the per-event
    /// hot loop allocates nothing in steady state.
    scratch_effects: ContextEffects<M>,
}

// Manual so `M`/`N` need no `Debug` bounds: a simulation hosting thousands
// of nodes is summarized by its counters, not dumped wholesale.
impl<M, N> std::fmt::Debug for Simulation<M, N> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulation")
            .field("now", &self.now)
            .field("seed", &self.seed)
            .field("nodes", &self.nodes.len())
            .field("queued_events", &self.queue.len())
            .field("pending_timers", &self.pending_timers.len())
            .field("partitions", &self.partitions.len())
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

impl<M, N> Simulation<M, N>
where
    M: WireSize,
    N: Node<M>,
{
    /// Creates a new simulation with the given network configuration and
    /// random seed.
    pub fn new(config: NetConfig, seed: u64) -> Self {
        config.validate().expect("invalid network configuration");
        Simulation {
            config,
            nodes: HashMap::new(),
            queue: BinaryHeap::new(),
            now: Instant::ZERO,
            seq: 0,
            timer_handles: 0,
            pending_timers: HashSet::new(),
            partitions: Vec::new(),
            peer_loss: HashMap::new(),
            stats: NetStats::default(),
            rng: ChaCha8Rng::seed_from_u64(seed),
            seed,
            scratch_effects: ContextEffects::new(),
        }
    }

    /// The seed this simulation was created with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Current simulated time.
    pub fn now(&self) -> Instant {
        self.now
    }

    /// Network/traffic statistics so far.
    pub fn stats(&self) -> &NetStats {
        &self.stats
    }

    /// Mutable access to the statistics (e.g. to reset between phases).
    pub fn stats_mut(&mut self) -> &mut NetStats {
        &mut self.stats
    }

    /// The network configuration.
    pub fn config(&self) -> &NetConfig {
        &self.config
    }

    /// Number of live (non-crashed, non-removed) nodes.
    pub fn live_node_count(&self) -> usize {
        self.nodes
            .values()
            .filter(|s| !s.crashed && !s.halted)
            .count()
    }

    /// All node identifiers currently known to the simulation.
    pub fn node_ids(&self) -> Vec<NodeId> {
        let mut ids: Vec<NodeId> = self.nodes.keys().copied().collect();
        ids.sort_unstable();
        ids
    }

    /// Adds a node in the default region and schedules its `on_start`.
    /// Returns the node's identifier for convenience.
    pub fn add_node(&mut self, id: NodeId, node: N) -> NodeId {
        self.add_node_in_region(id, node, Region::DEFAULT)
    }

    /// Adds a node in a specific region (for WAN topologies).
    ///
    /// # Panics
    ///
    /// Panics if a node with the same identifier already exists.
    pub fn add_node_in_region(&mut self, id: NodeId, node: N, region: Region) -> NodeId {
        assert!(
            !self.nodes.contains_key(&id),
            "node {id} already exists in the simulation"
        );
        let node_seed = self.rng.next_u64() ^ id.raw().wrapping_mul(0x9E3779B97F4A7C15);
        self.nodes.insert(
            id,
            NodeSlot {
                node,
                rng: ChaCha8Rng::seed_from_u64(node_seed),
                region,
                crashed: false,
                halted: false,
            },
        );
        self.push(Instant::ZERO.max(self.now), EventKind::Start { node: id });
        id
    }

    /// Immutable access to a node's state.
    pub fn node(&self, id: NodeId) -> Option<&N> {
        self.nodes.get(&id).map(|s| &s.node)
    }

    /// Mutable access to a node's state (outside of event processing; for
    /// in-callback mutation use [`Simulation::call`]).
    pub fn node_mut(&mut self, id: NodeId) -> Option<&mut N> {
        self.nodes.get_mut(&id).map(|s| &mut s.node)
    }

    /// Returns `true` if the node exists and is neither crashed nor halted.
    pub fn is_live(&self, id: NodeId) -> bool {
        self.nodes
            .get(&id)
            .map(|s| !s.crashed && !s.halted)
            .unwrap_or(false)
    }

    /// Crashes a node: it stops receiving messages and timers. The node's
    /// state remains inspectable.
    pub fn crash(&mut self, id: NodeId) {
        if let Some(slot) = self.nodes.get_mut(&id) {
            slot.crashed = true;
        }
    }

    /// Restarts a crashed node (it resumes receiving messages; lost messages
    /// are not replayed).
    pub fn restart(&mut self, id: NodeId) {
        if let Some(slot) = self.nodes.get_mut(&id) {
            slot.crashed = false;
        }
    }

    /// Removes a node entirely, dropping its state.
    pub fn remove_node(&mut self, id: NodeId) -> Option<N> {
        self.nodes.remove(&id).map(|s| s.node)
    }

    /// Installs a bidirectional partition between the two sets: messages
    /// crossing from one side to the other are dropped until [`heal`] is
    /// called.
    ///
    /// [`heal`]: Simulation::heal
    pub fn partition(&mut self, side_a: &[NodeId], side_b: &[NodeId]) {
        self.partitions.push((
            side_a.iter().copied().collect(),
            side_b.iter().copied().collect(),
        ));
    }

    /// Removes all partitions.
    pub fn heal(&mut self) {
        self.partitions.clear();
    }

    /// Sets the loss probability of messages *towards* `peer`, overriding
    /// the global [`NetConfig::loss_probability`] for that destination
    /// (0.0 removes the override). Part of the fault vocabulary shared
    /// with the TCP runtime's fault plane (see [`FaultInjector`]).
    pub fn set_loss(&mut self, peer: NodeId, p: f64) {
        if p > 0.0 {
            self.peer_loss.insert(peer, p);
        } else {
            self.peer_loss.remove(&peer);
        }
    }

    /// Schedules an external call against a node at the current simulated
    /// time (plus an infinitesimal ordering step). Used by the harness to
    /// invoke API operations such as `join` or `broadcast`.
    pub fn call<F>(&mut self, node: NodeId, f: F)
    where
        F: FnOnce(&mut N, &mut Context<'_, M>) + Send + 'static,
    {
        self.call_at(self.now, node, f);
    }

    /// Schedules an external call at an absolute simulated time.
    pub fn call_at<F>(&mut self, at: Instant, node: NodeId, f: F)
    where
        F: FnOnce(&mut N, &mut Context<'_, M>) + Send + 'static,
    {
        let at = at.max(self.now);
        self.push(
            at,
            EventKind::Call {
                node,
                f: Box::new(f),
            },
        );
    }

    /// Runs events until the queue is empty or `max` simulated time has
    /// elapsed (measured from the current time). Returns the simulated time
    /// at which the run stopped.
    pub fn run_until_idle(&mut self, max: Duration) -> Instant {
        let deadline = self.now + max;
        while let Some(Reverse(ev)) = self.queue.peek() {
            if ev.at > deadline {
                // Stopped by the deadline, not by drain: advance to it.
                self.now = deadline;
                return self.now;
            }
            self.step();
        }
        // Queue drained: the clock stays at the last processed event.
        self.now
    }

    /// Runs events until the given absolute simulated time (inclusive).
    pub fn run_until(&mut self, t: Instant) {
        while let Some(Reverse(ev)) = self.queue.peek() {
            if ev.at > t {
                break;
            }
            self.step();
        }
        self.now = self.now.max(t);
    }

    /// Runs events for `d` simulated time from now.
    pub fn run_for(&mut self, d: Duration) {
        let target = self.now + d;
        self.run_until(target);
    }

    /// Returns `true` when no events remain.
    pub fn is_idle(&self) -> bool {
        self.queue.is_empty()
    }

    /// Processes a single event, if any. Returns `false` when the queue was
    /// empty.
    pub fn step(&mut self) -> bool {
        let Some(Reverse(ev)) = self.queue.pop() else {
            return false;
        };
        self.now = self.now.max(ev.at);
        self.stats.events_processed += 1;
        match ev.kind {
            EventKind::Deliver {
                from,
                to,
                msg,
                size,
            } => self.do_deliver(from, to, msg, size),
            EventKind::Timer { node, tag, handle } => self.do_timer(node, tag, handle),
            EventKind::Call { node, f } => self.do_call(node, f),
            EventKind::Start { node } => self.do_start(node),
        }
        true
    }

    fn push(&mut self, at: Instant, kind: EventKind<M, N>) {
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Reverse(QueuedEvent { at, seq, kind }));
    }

    fn blocked_by_partition(&self, a: NodeId, b: NodeId) -> bool {
        self.partitions.iter().any(|(sa, sb)| {
            (sa.contains(&a) && sb.contains(&b)) || (sa.contains(&b) && sb.contains(&a))
        })
    }

    fn do_deliver(&mut self, from: NodeId, to: NodeId, msg: M, size: usize) {
        let deliverable = self
            .nodes
            .get(&to)
            .map(|s| !s.crashed && !s.halted)
            .unwrap_or(false);
        if !deliverable {
            self.stats.messages_dropped += 1;
            return;
        }
        self.stats.messages_delivered += 1;
        self.stats.bytes_delivered += size as u64;
        self.with_context(to, |node, ctx| node.on_message(from, msg, ctx));
    }

    fn do_timer(&mut self, node: NodeId, tag: u64, handle: u64) {
        if !self.pending_timers.remove(&handle) {
            return; // Cancelled before firing.
        }
        let deliverable = self
            .nodes
            .get(&node)
            .map(|s| !s.crashed && !s.halted)
            .unwrap_or(false);
        if !deliverable {
            return;
        }
        self.stats.timers_fired += 1;
        self.with_context(node, |n, ctx| n.on_timer(tag, ctx));
    }

    fn do_call(&mut self, node: NodeId, f: NodeCall<M, N>) {
        if !self.nodes.contains_key(&node) {
            return;
        }
        self.stats.calls_executed += 1;
        self.with_context(node, |n, ctx| f(n, ctx));
    }

    fn do_start(&mut self, node: NodeId) {
        if !self.nodes.contains_key(&node) {
            return;
        }
        self.with_context(node, |n, ctx| n.on_start(ctx));
    }

    /// Builds a context for `id`, runs `f`, then applies the context's
    /// effects (outgoing messages, timers, cancellations, halt flag) in the
    /// order the `node` module docs prescribe — the same contract the TCP
    /// runtime follows, so both runtimes drive identical state machines.
    ///
    /// This is the innermost frame of the event loop, so it is kept
    /// allocation- and copy-free: the context borrows the node's RNG in
    /// place (cloning a `ChaCha8Rng` per event was measurable at millions
    /// of events per second) and the effect buffers are recycled scratch
    /// vectors whose capacity survives across events.
    fn with_context<F>(&mut self, id: NodeId, f: F)
    where
        F: FnOnce(&mut N, &mut Context<'_, M>),
    {
        let effects = std::mem::take(&mut self.scratch_effects);
        let Some(slot) = self.nodes.get_mut(&id) else {
            self.scratch_effects = effects;
            return;
        };
        let mut next_handle = self.timer_handles;
        let mut ctx = Context::for_runtime(id, self.now, &mut slot.rng, &mut next_handle, effects);
        f(&mut slot.node, &mut ctx);

        let mut effects = ctx.into_effects();
        self.timer_handles = next_handle;
        if effects.halted {
            slot.halted = true;
        }
        let sender_region = slot.region;

        // New timers enter the pending set before cancellations are applied
        // so a timer set and cancelled within the same callback stays
        // cancelled.
        for &TimerRequest { delay, tag, handle } in &effects.new_timers {
            let at = self.now + delay;
            self.pending_timers.insert(handle);
            self.push(
                at,
                EventKind::Timer {
                    node: id,
                    tag,
                    handle,
                },
            );
        }
        for handle in effects.cancelled_timers.drain(..) {
            self.pending_timers.remove(&handle);
        }
        for OutboundMessage { to, msg, size } in effects.outbox.drain(..) {
            self.route(id, sender_region, to, msg, size);
        }
        effects.clear();
        self.scratch_effects = effects;
    }

    fn route(&mut self, from: NodeId, from_region: Region, to: NodeId, msg: M, size: usize) {
        self.stats.messages_sent += 1;
        self.stats.bytes_sent += size as u64;

        // `partitions` is empty in the vast majority of runs; skip the
        // per-message scan entirely then.
        if !self.partitions.is_empty() && self.blocked_by_partition(from, to) {
            self.stats.messages_dropped += 1;
            atum_obs::trace_event!(
                FaultInjected,
                at = self.now.as_micros(),
                node = from.raw(),
                slots = [to.raw(), 1, 0],
                "partition dropped {from} -> {to}"
            );
            return;
        }
        let loss = self
            .peer_loss
            .get(&to)
            .copied()
            .unwrap_or(self.config.loss_probability);
        if loss > 0.0 && self.rng.gen_bool(loss.min(1.0)) {
            self.stats.messages_lost += 1;
            atum_obs::trace_event!(
                FaultInjected,
                at = self.now.as_micros(),
                node = from.raw(),
                slots = [to.raw(), 2, 0],
                "loss dropped {from} -> {to}"
            );
            return;
        }
        let to_region = self
            .nodes
            .get(&to)
            .map(|s| s.region)
            .unwrap_or(Region::DEFAULT);
        let propagation = self
            .config
            .latency
            .sample(from_region, to_region, &mut self.rng);
        let serialization = self.config.serialization_delay(size);
        let overhead = self.config.processing_overhead;
        let at = self.now + propagation + serialization + overhead;
        self.push(
            at,
            EventKind::Deliver {
                from,
                to,
                msg,
                size,
            },
        );
    }
}

/// The fault vocabulary shared by the simulator and the TCP runtime's
/// fault plane: one scenario script (partition, heal, per-peer loss) runs
/// unchanged against either substrate. The simulator implements it by
/// dropping events before they are queued; the TCP runtime implements it
/// on `atum_net`'s `FaultPlane`, intercepting at the frame boundary.
///
/// Methods take `&mut self` so the trait can be implemented both by the
/// exclusively-owned simulation and by shared control handles.
pub trait FaultInjector {
    /// Installs a bidirectional partition between the two sides.
    fn partition(&mut self, side_a: &[NodeId], side_b: &[NodeId]);
    /// Removes all partitions.
    fn heal(&mut self);
    /// Sets the loss probability of traffic towards `peer` (0.0 removes
    /// the override).
    fn set_loss(&mut self, peer: NodeId, p: f64);
}

impl<M, N> FaultInjector for Simulation<M, N>
where
    M: WireSize,
    N: Node<M>,
{
    fn partition(&mut self, side_a: &[NodeId], side_b: &[NodeId]) {
        Simulation::partition(self, side_a, side_b);
    }

    fn heal(&mut self) {
        Simulation::heal(self);
    }

    fn set_loss(&mut self, peer: NodeId, p: f64) {
        Simulation::set_loss(self, peer, p);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atum_types::Duration;

    /// A node that records everything it sees and can ping-pong.
    #[derive(Default)]
    struct Recorder {
        started: bool,
        messages: Vec<(NodeId, u64)>,
        timers: Vec<u64>,
    }

    impl Node<u64> for Recorder {
        fn on_start(&mut self, _ctx: &mut Context<'_, u64>) {
            self.started = true;
        }
        fn on_message(&mut self, from: NodeId, msg: u64, ctx: &mut Context<'_, u64>) {
            self.messages.push((from, msg));
            if msg < 3 {
                ctx.send(from, msg + 1);
            }
        }
        fn on_timer(&mut self, tag: u64, _ctx: &mut Context<'_, u64>) {
            self.timers.push(tag);
        }
    }

    fn two_node_sim() -> (Simulation<u64, Recorder>, NodeId, NodeId) {
        let mut sim = Simulation::new(NetConfig::lan(), 1);
        let a = sim.add_node(NodeId::new(0), Recorder::default());
        let b = sim.add_node(NodeId::new(1), Recorder::default());
        (sim, a, b)
    }

    #[test]
    fn on_start_runs_for_every_node() {
        let (mut sim, a, b) = two_node_sim();
        sim.run_until_idle(Duration::from_secs(1));
        assert!(sim.node(a).unwrap().started);
        assert!(sim.node(b).unwrap().started);
    }

    #[test]
    fn ping_pong_exchanges_messages_with_increasing_time() {
        let (mut sim, a, b) = two_node_sim();
        sim.call(a, move |_n, ctx| ctx.send(b, 0));
        sim.run_until_idle(Duration::from_secs(10));
        // b saw 0 and 2; a saw 1 and 3.
        let b_msgs: Vec<u64> = sim.node(b).unwrap().messages.iter().map(|m| m.1).collect();
        let a_msgs: Vec<u64> = sim.node(a).unwrap().messages.iter().map(|m| m.1).collect();
        assert_eq!(b_msgs, vec![0, 2]);
        assert_eq!(a_msgs, vec![1, 3]);
        assert!(sim.now() > Instant::ZERO);
        assert_eq!(sim.stats().messages_sent, 4);
        assert_eq!(sim.stats().messages_delivered, 4);
    }

    #[test]
    fn timers_fire_in_order_and_can_be_cancelled() {
        let mut sim: Simulation<u64, Recorder> = Simulation::new(NetConfig::lan(), 3);
        let a = sim.add_node(NodeId::new(0), Recorder::default());
        sim.call(a, |_n, ctx| {
            let _keep = ctx.set_timer(Duration::from_secs(1), 11);
            let cancel = ctx.set_timer(Duration::from_secs(2), 22);
            let _later = ctx.set_timer(Duration::from_secs(3), 33);
            ctx.cancel_timer(cancel);
        });
        sim.run_until_idle(Duration::from_secs(10));
        assert_eq!(sim.node(a).unwrap().timers, vec![11, 33]);
        assert_eq!(sim.stats().timers_fired, 2);
    }

    #[test]
    fn timer_bookkeeping_never_leaks() {
        let mut sim: Simulation<u64, Recorder> = Simulation::new(NetConfig::lan(), 7);
        let a = sim.add_node(NodeId::new(0), Recorder::default());
        let b = sim.add_node(NodeId::new(1), Recorder::default());

        // A timer cancelled after it already fired must not leave a
        // permanent entry behind (the historical leak: long churn runs
        // accumulated cancelled handles forever).
        let fired = std::sync::Arc::new(std::sync::Mutex::new(None));
        let fired_in = fired.clone();
        sim.call(a, move |_n, ctx| {
            *fired_in.lock().unwrap() = Some(ctx.set_timer(Duration::from_millis(1), 1));
        });
        sim.run_until_idle(Duration::from_secs(1));
        assert!(sim.pending_timers.is_empty());
        let stale = fired.lock().unwrap().unwrap();
        sim.call(a, move |_n, ctx| ctx.cancel_timer(stale));
        sim.run_until_idle(Duration::from_secs(1));
        assert!(sim.pending_timers.is_empty(), "stale cancel leaked");

        // Timers of crashed and removed nodes drain from the pending set
        // when their events reach the queue head, even though they no
        // longer fire.
        sim.call(b, |_n, ctx| {
            ctx.set_timer(Duration::from_secs(1), 2);
            ctx.set_timer(Duration::from_secs(1), 3);
        });
        sim.run_for(Duration::from_millis(10));
        assert_eq!(sim.pending_timers.len(), 2);
        sim.crash(b);
        sim.run_until_idle(Duration::from_secs(5));
        assert!(
            sim.pending_timers.is_empty(),
            "crashed node's timers leaked"
        );
        assert_eq!(sim.node(b).unwrap().timers.len(), 0);
    }

    #[test]
    fn crashed_nodes_receive_nothing_until_restart() {
        let (mut sim, a, b) = two_node_sim();
        sim.run_until_idle(Duration::from_secs(1));
        sim.crash(b);
        sim.call(a, move |_n, ctx| ctx.send(b, 9));
        sim.run_until_idle(Duration::from_secs(5));
        assert!(sim.node(b).unwrap().messages.is_empty());
        assert_eq!(sim.stats().messages_dropped, 1);

        sim.restart(b);
        sim.call(a, move |_n, ctx| ctx.send(b, 9));
        sim.run_until_idle(Duration::from_secs(5));
        assert_eq!(sim.node(b).unwrap().messages.len(), 1);
    }

    #[test]
    fn partition_blocks_and_heal_restores() {
        let (mut sim, a, b) = two_node_sim();
        sim.partition(&[a], &[b]);
        sim.call(a, move |_n, ctx| ctx.send(b, 7));
        sim.run_until_idle(Duration::from_secs(5));
        assert!(sim.node(b).unwrap().messages.is_empty());

        sim.heal();
        sim.call(a, move |_n, ctx| ctx.send(b, 7));
        sim.run_until_idle(Duration::from_secs(5));
        assert_eq!(sim.node(b).unwrap().messages.len(), 1);
    }

    #[test]
    fn lossy_network_drops_roughly_the_configured_fraction() {
        let mut sim: Simulation<u64, Recorder> = Simulation::new(NetConfig::lossy(0.3), 5);
        let a = sim.add_node(NodeId::new(0), Recorder::default());
        let b = sim.add_node(NodeId::new(1), Recorder::default());
        for i in 0..1000u64 {
            // Send value >= 3 so the receiver does not reply.
            sim.call(a, move |_n, ctx| ctx.send(b, 100 + i));
        }
        sim.run_until_idle(Duration::from_secs(60));
        let delivered = sim.node(b).unwrap().messages.len();
        assert!(delivered > 550 && delivered < 850, "delivered {delivered}");
        assert_eq!(sim.stats().messages_lost as usize, 1000 - delivered);
    }

    #[test]
    fn larger_messages_take_longer() {
        #[derive(Default)]
        struct Sink {
            at: Vec<Instant>,
        }
        impl Node<Vec<u8>> for Sink {
            fn on_message(&mut self, _f: NodeId, _m: Vec<u8>, ctx: &mut Context<'_, Vec<u8>>) {
                self.at.push(ctx.now());
            }
            fn on_timer(&mut self, _t: u64, _c: &mut Context<'_, Vec<u8>>) {}
        }
        // Zero-jitter config isolates the serialisation component.
        let cfg = NetConfig {
            latency: crate::latency::LatencyModel::Uniform {
                min: Duration::from_micros(100),
                max: Duration::from_micros(101),
            },
            ..NetConfig::lan()
        };
        let mut sim: Simulation<Vec<u8>, Sink> = Simulation::new(cfg, 9);
        let a = sim.add_node(NodeId::new(0), Sink::default());
        let b = sim.add_node(NodeId::new(1), Sink::default());
        sim.call(a, move |_n, ctx| ctx.send(b, vec![0u8; 10]));
        sim.run_until_idle(Duration::from_secs(1));
        let t_small = sim.node(b).unwrap().at[0];
        let start = sim.now();
        sim.call(a, move |_n, ctx| ctx.send(b, vec![0u8; 1_000_000]));
        sim.run_until_idle(Duration::from_secs(10));
        let t_big = sim.node(b).unwrap().at[1];
        assert!(
            (t_big - start).as_micros() > (t_small - Instant::ZERO).as_micros() * 5,
            "big transfer should be much slower"
        );
    }

    #[test]
    fn determinism_same_seed_same_outcome() {
        fn run(seed: u64) -> (u64, u64, Vec<(NodeId, u64)>) {
            let mut sim: Simulation<u64, Recorder> = Simulation::new(NetConfig::wan(), seed);
            let a = sim.add_node(NodeId::new(0), Recorder::default());
            let b = sim.add_node(NodeId::new(1), Recorder::default());
            sim.call(a, move |_n, ctx| ctx.send(b, 0));
            sim.call(b, move |_n, ctx| ctx.send(a, 0));
            sim.run_until_idle(Duration::from_secs(30));
            (
                sim.now().as_micros(),
                sim.stats().messages_delivered,
                sim.node(a).unwrap().messages.clone(),
            )
        }
        assert_eq!(run(42), run(42));
        // Different seeds give different latencies (overwhelmingly likely).
        assert_ne!(run(42).0, run(43).0);
    }

    #[test]
    fn remove_node_returns_state_and_stops_delivery() {
        let (mut sim, a, b) = two_node_sim();
        sim.run_until_idle(Duration::from_secs(1));
        let removed = sim.remove_node(b).unwrap();
        assert!(removed.started);
        assert!(sim.node(b).is_none());
        assert_eq!(sim.live_node_count(), 1);
        sim.call(a, move |_n, ctx| ctx.send(b, 5));
        sim.run_until_idle(Duration::from_secs(5));
        assert_eq!(sim.stats().messages_dropped, 1);
    }

    #[test]
    fn node_ids_are_sorted_and_live_count_tracks_halt() {
        #[derive(Default)]
        struct Halter;
        impl Node<u64> for Halter {
            fn on_message(&mut self, _f: NodeId, _m: u64, ctx: &mut Context<'_, u64>) {
                ctx.halt();
            }
            fn on_timer(&mut self, _t: u64, _c: &mut Context<'_, u64>) {}
        }
        let mut sim: Simulation<u64, Halter> = Simulation::new(NetConfig::lan(), 2);
        let b = sim.add_node(NodeId::new(5), Halter);
        let a = sim.add_node(NodeId::new(1), Halter);
        assert_eq!(sim.node_ids(), vec![a, b]);
        assert!(sim.is_live(a));
        sim.call(a, move |_n, ctx| ctx.send(a, 1));
        sim.run_until_idle(Duration::from_secs(2));
        // a halted itself upon receiving the message.
        assert!(!sim.is_live(a));
        assert_eq!(sim.live_node_count(), 1);
    }

    #[test]
    #[should_panic(expected = "already exists")]
    fn duplicate_node_ids_are_rejected() {
        let mut sim: Simulation<u64, Recorder> = Simulation::new(NetConfig::lan(), 1);
        sim.add_node(NodeId::new(0), Recorder::default());
        sim.add_node(NodeId::new(0), Recorder::default());
    }

    #[test]
    fn call_at_runs_at_requested_time() {
        let mut sim: Simulation<u64, Recorder> = Simulation::new(NetConfig::lan(), 1);
        let a = sim.add_node(NodeId::new(0), Recorder::default());
        sim.call_at(Instant::from_micros(5_000_000), a, |_n, ctx| {
            ctx.set_timer(Duration::ZERO, 99);
        });
        sim.run_until_idle(Duration::from_secs(20));
        assert!(sim.now() >= Instant::from_micros(5_000_000));
        assert_eq!(sim.node(a).unwrap().timers, vec![99]);
    }
}
