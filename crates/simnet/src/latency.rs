//! Link models: latency, jitter, bandwidth and loss.

use atum_types::Duration;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Geographic region a node lives in.
///
/// The WAN experiments of the paper span 8 EC2 regions; for latency modelling
/// it is enough to distinguish "same region" from "different region" plus a
/// rough distance class, so regions are plain small integers.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct Region(pub u8);

impl Region {
    /// The default region every node starts in.
    pub const DEFAULT: Region = Region(0);
}

/// Base latency model for a pair of nodes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum LatencyModel {
    /// Uniform latency between `min` and `max` regardless of placement
    /// (a single datacenter: the Sync deployment of the paper).
    Uniform {
        /// Lower bound.
        min: Duration,
        /// Upper bound.
        max: Duration,
    },
    /// Intra-region latency `local`, inter-region latency `remote` (with the
    /// same ±50 % jitter window), emulating the 8-region WAN deployment.
    Regional {
        /// Latency between nodes in the same region.
        local: Duration,
        /// Latency between nodes in different regions.
        remote: Duration,
    },
}

impl LatencyModel {
    /// Samples a one-way propagation delay for a message between two regions.
    pub fn sample<R: Rng + ?Sized>(&self, from: Region, to: Region, rng: &mut R) -> Duration {
        match *self {
            LatencyModel::Uniform { min, max } => {
                let lo = min.as_micros();
                let hi = max.as_micros().max(lo + 1);
                Duration::from_micros(rng.gen_range(lo..hi))
            }
            LatencyModel::Regional { local, remote } => {
                let base = if from == to { local } else { remote };
                let us = base.as_micros().max(1);
                // ±50 % jitter window around the base latency.
                Duration::from_micros(rng.gen_range(us / 2..us + us / 2))
            }
        }
    }

    /// The worst-case (pre-jitter) latency of the model, used for sizing
    /// synchronous rounds in tests.
    pub fn upper_bound(&self) -> Duration {
        match *self {
            LatencyModel::Uniform { max, .. } => max,
            LatencyModel::Regional { remote, .. } => {
                Duration::from_micros(remote.as_micros() + remote.as_micros() / 2)
            }
        }
    }
}

/// Complete network configuration for a simulation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetConfig {
    /// Propagation-delay model.
    pub latency: LatencyModel,
    /// Link bandwidth in bytes per second (per message serialisation delay =
    /// size / bandwidth). EC2 micro instances offer on the order of tens of
    /// MB/s; the default models 25 MB/s.
    pub bandwidth_bytes_per_sec: u64,
    /// Probability (0.0–1.0) that any individual message is silently lost.
    pub loss_probability: f64,
    /// Fixed per-message processing overhead charged at the receiver
    /// (deserialisation, syscalls, crypto checks).
    pub processing_overhead: Duration,
}

impl NetConfig {
    /// A single-datacenter (LAN) profile: 0.2–1.2 ms latency, 25 MB/s,
    /// lossless.
    pub fn lan() -> Self {
        NetConfig {
            latency: LatencyModel::Uniform {
                min: Duration::from_micros(200),
                max: Duration::from_micros(1_200),
            },
            bandwidth_bytes_per_sec: 25_000_000,
            loss_probability: 0.0,
            processing_overhead: Duration::from_micros(50),
        }
    }

    /// A wide-area profile: 2 ms within a region, 120 ms across regions,
    /// 12 MB/s, 0.1 % loss.
    pub fn wan() -> Self {
        NetConfig {
            latency: LatencyModel::Regional {
                local: Duration::from_millis(2),
                remote: Duration::from_millis(120),
            },
            bandwidth_bytes_per_sec: 12_000_000,
            loss_probability: 0.001,
            processing_overhead: Duration::from_micros(80),
        }
    }

    /// A lossy, slow profile for stress tests.
    pub fn lossy(loss_probability: f64) -> Self {
        NetConfig {
            loss_probability,
            ..NetConfig::wan()
        }
    }

    /// Total transmission delay for a message of `size` bytes (serialisation
    /// only; propagation is sampled separately).
    pub fn serialization_delay(&self, size: usize) -> Duration {
        if self.bandwidth_bytes_per_sec == 0 {
            return Duration::ZERO;
        }
        Duration::from_micros((size as u64 * 1_000_000) / self.bandwidth_bytes_per_sec)
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a description of the violated constraint when the loss
    /// probability is outside `[0, 1)` or the bandwidth is zero.
    pub fn validate(&self) -> Result<(), String> {
        if !(0.0..1.0).contains(&self.loss_probability) {
            return Err(format!(
                "loss probability {} must be in [0, 1)",
                self.loss_probability
            ));
        }
        if self.bandwidth_bytes_per_sec == 0 {
            return Err("bandwidth must be non-zero".to_string());
        }
        Ok(())
    }
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig::lan()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn uniform_latency_stays_in_bounds() {
        let model = LatencyModel::Uniform {
            min: Duration::from_millis(1),
            max: Duration::from_millis(3),
        };
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for _ in 0..1000 {
            let d = model.sample(Region(0), Region(1), &mut rng);
            assert!(d >= Duration::from_millis(1) && d < Duration::from_millis(3));
        }
    }

    #[test]
    fn regional_latency_distinguishes_local_and_remote() {
        let model = LatencyModel::Regional {
            local: Duration::from_millis(2),
            remote: Duration::from_millis(100),
        };
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let local: Vec<u64> = (0..200)
            .map(|_| model.sample(Region(1), Region(1), &mut rng).as_micros())
            .collect();
        let remote: Vec<u64> = (0..200)
            .map(|_| model.sample(Region(1), Region(2), &mut rng).as_micros())
            .collect();
        let local_max = *local.iter().max().unwrap();
        let remote_min = *remote.iter().min().unwrap();
        assert!(local_max < remote_min);
        assert!(model.upper_bound() >= Duration::from_millis(100));
    }

    #[test]
    fn serialization_delay_scales_with_size() {
        let cfg = NetConfig::lan();
        let small = cfg.serialization_delay(1_000);
        let big = cfg.serialization_delay(1_000_000);
        assert!(big > small.saturating_mul(100));
        assert_eq!(
            NetConfig {
                bandwidth_bytes_per_sec: 0,
                ..NetConfig::lan()
            }
            .serialization_delay(1_000_000),
            Duration::ZERO
        );
    }

    #[test]
    fn profiles_validate() {
        NetConfig::lan().validate().unwrap();
        NetConfig::wan().validate().unwrap();
        NetConfig::lossy(0.2).validate().unwrap();
        assert!(NetConfig::lossy(1.5).validate().is_err());
        assert!(NetConfig {
            bandwidth_bytes_per_sec: 0,
            ..NetConfig::lan()
        }
        .validate()
        .is_err());
    }

    #[test]
    fn default_is_lan() {
        assert_eq!(NetConfig::default(), NetConfig::lan());
    }
}
