//! A deterministic discrete-event network simulator: the substrate this
//! reproduction uses in place of the paper's EC2 deployment.
//!
//! The simulator executes a set of [`Node`] actors. Nodes only interact with
//! the world through their [`Context`]: they send messages, set timers, read
//! the simulated clock and draw from a per-node deterministic RNG. The
//! [`Simulation`] engine owns the event queue and delivers messages with a
//! configurable [`LatencyModel`] (LAN / WAN profiles, jitter, bandwidth,
//! loss) plus optional partitions and crashes.
//!
//! Determinism: given the same seed, node set and external call schedule, a
//! simulation produces the same event order and the same results. All
//! randomness flows from `ChaCha`-seeded generators owned by the engine.
//!
//! # Example
//!
//! ```
//! use atum_simnet::{Context, Node, NetConfig, Simulation};
//! use atum_types::{Duration, NodeId};
//!
//! struct Echo {
//!     got: Vec<String>,
//! }
//!
//! impl Node<String> for Echo {
//!     fn on_message(&mut self, from: NodeId, msg: String, ctx: &mut Context<'_, String>) {
//!         self.got.push(msg.clone());
//!         if msg == "ping" {
//!             ctx.send(from, "pong".to_string());
//!         }
//!     }
//!     fn on_timer(&mut self, _tag: u64, _ctx: &mut Context<'_, String>) {}
//! }
//!
//! let mut sim: Simulation<String, Echo> = Simulation::new(NetConfig::lan(), 7);
//! let a = sim.add_node(NodeId::new(0), Echo { got: vec![] });
//! let b = sim.add_node(NodeId::new(1), Echo { got: vec![] });
//! sim.call(a, move |_node, ctx| ctx.send(b, "ping".to_string()));
//! sim.run_until_idle(Duration::from_secs(10));
//! assert_eq!(sim.node(b).unwrap().got, vec!["ping".to_string()]);
//! assert_eq!(sim.node(a).unwrap().got, vec!["pong".to_string()]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod engine;
pub mod latency;
pub mod node;
pub mod stats;

pub use engine::{FaultInjector, Simulation};
pub use latency::{LatencyModel, NetConfig, Region};
pub use node::{Context, ContextEffects, Node, OutboundMessage, TimerHandle, TimerRequest};
pub use stats::NetStats;
