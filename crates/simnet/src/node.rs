//! The [`Node`] actor trait and the [`Context`] through which actors interact
//! with the simulated world.

use atum_types::{Duration, Instant, NodeId, WireSize};
use rand_chacha::ChaCha8Rng;

/// A message queued for sending, together with its size accounting.
#[derive(Debug, Clone)]
pub struct OutboundMessage<M> {
    /// Destination node.
    pub to: NodeId,
    /// Payload.
    pub msg: M,
    /// Size in bytes charged to the link (serialisation delay, stats).
    pub size: usize,
}

/// A timer scheduled by a node. Returned by [`Context::set_timer`]; can be
/// cancelled with [`Context::cancel_timer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TimerHandle(pub(crate) u64);

/// The interface a node uses to act on the world during a callback.
///
/// A `Context` is only valid for the duration of one callback invocation; all
/// effects (sends, timers) are applied by the engine when the callback
/// returns.
pub struct Context<'a, M> {
    pub(crate) own_id: NodeId,
    pub(crate) now: Instant,
    pub(crate) rng: &'a mut ChaCha8Rng,
    pub(crate) outbox: Vec<OutboundMessage<M>>,
    pub(crate) new_timers: Vec<(Duration, u64, u64)>, // (delay, tag, handle id)
    pub(crate) cancelled_timers: Vec<u64>,
    pub(crate) next_timer_handle: &'a mut u64,
    pub(crate) halted: bool,
}

impl<'a, M: WireSize> Context<'a, M> {
    /// The identifier of the node this context belongs to.
    pub fn id(&self) -> NodeId {
        self.own_id
    }

    /// Current simulated time.
    pub fn now(&self) -> Instant {
        self.now
    }

    /// Deterministic per-node random number generator.
    pub fn rng(&mut self) -> &mut ChaCha8Rng {
        self.rng
    }

    /// Sends `msg` to `to`. The size is taken from [`WireSize`].
    pub fn send(&mut self, to: NodeId, msg: M) {
        let size = msg.wire_size() + atum_types::wire::ENVELOPE_OVERHEAD;
        self.send_sized(to, msg, size);
    }

    /// Sends `msg` to `to` charging an explicit size (used when the logical
    /// payload stands in for a larger physical one, e.g. file chunks).
    pub fn send_sized(&mut self, to: NodeId, msg: M, size: usize) {
        self.outbox.push(OutboundMessage { to, msg, size });
    }

    /// Schedules a timer to fire after `delay` with the given tag.
    pub fn set_timer(&mut self, delay: Duration, tag: u64) -> TimerHandle {
        let handle = *self.next_timer_handle;
        *self.next_timer_handle += 1;
        self.new_timers.push((delay, tag, handle));
        TimerHandle(handle)
    }

    /// Cancels a previously scheduled timer. Cancelling an already-fired or
    /// unknown timer is a no-op.
    pub fn cancel_timer(&mut self, handle: TimerHandle) {
        self.cancelled_timers.push(handle.0);
    }

    /// Marks this node as halted: the engine will deliver no further events
    /// to it (used by `leave` once a node has fully departed).
    pub fn halt(&mut self) {
        self.halted = true;
    }
}

/// A simulated node (actor).
///
/// All methods receive a [`Context`] for interacting with the network and the
/// clock. Implementations must be deterministic given the context's RNG.
pub trait Node<M>: Sized {
    /// Called once when the node is added to the simulation.
    fn on_start(&mut self, _ctx: &mut Context<'_, M>) {}

    /// Called when a message from `from` is delivered.
    fn on_message(&mut self, from: NodeId, msg: M, ctx: &mut Context<'_, M>);

    /// Called when a timer set through [`Context::set_timer`] fires.
    fn on_timer(&mut self, tag: u64, ctx: &mut Context<'_, M>);
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn make_ctx<'a, M>(rng: &'a mut ChaCha8Rng, next: &'a mut u64) -> Context<'a, M> {
        // Helper mirroring how the engine constructs contexts.
        Context {
            own_id: NodeId::new(3),
            now: Instant::from_micros(500),
            rng,
            outbox: Vec::new(),
            new_timers: Vec::new(),
            cancelled_timers: Vec::new(),
            next_timer_handle: next,
            halted: false,
        }
    }

    #[test]
    fn context_collects_sends_and_timers() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let mut next = 10u64;
        let mut ctx: Context<'_, Vec<u8>> = make_ctx(&mut rng, &mut next);
        assert_eq!(ctx.id(), NodeId::new(3));
        assert_eq!(ctx.now().as_micros(), 500);

        ctx.send(NodeId::new(4), vec![1, 2, 3]);
        ctx.send_sized(NodeId::new(5), vec![], 9_999);
        let t1 = ctx.set_timer(Duration::from_secs(1), 7);
        let t2 = ctx.set_timer(Duration::from_secs(2), 8);
        ctx.cancel_timer(t1);
        assert_ne!(t1, t2);

        assert_eq!(ctx.outbox.len(), 2);
        assert_eq!(ctx.outbox[0].to, NodeId::new(4));
        // 3 bytes + 4-byte length prefix + envelope overhead
        assert_eq!(ctx.outbox[0].size, 7 + atum_types::wire::ENVELOPE_OVERHEAD);
        assert_eq!(ctx.outbox[1].size, 9_999);
        assert_eq!(ctx.new_timers.len(), 2);
        assert_eq!(ctx.cancelled_timers, vec![10]);
        assert_eq!(next, 12);
    }

    #[test]
    fn halt_flag_is_recorded() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let mut next = 0u64;
        let mut ctx: Context<'_, Vec<u8>> = make_ctx(&mut rng, &mut next);
        assert!(!ctx.halted);
        ctx.halt();
        assert!(ctx.halted);
    }

    #[test]
    fn rng_is_deterministic_per_seed() {
        use rand::RngCore;
        let mut rng1 = ChaCha8Rng::seed_from_u64(42);
        let mut rng2 = ChaCha8Rng::seed_from_u64(42);
        let mut next1 = 0u64;
        let mut next2 = 0u64;
        let mut ctx1: Context<'_, Vec<u8>> = make_ctx(&mut rng1, &mut next1);
        let a = ctx1.rng().next_u64();
        let mut ctx2: Context<'_, Vec<u8>> = make_ctx(&mut rng2, &mut next2);
        let b = ctx2.rng().next_u64();
        assert_eq!(a, b);
    }
}
