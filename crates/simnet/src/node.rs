//! The runtime-neutral actor surface: the [`Node`] trait, the [`Context`]
//! through which actors act on the world, and the [`ContextEffects`] buffer
//! a runtime applies after each callback.
//!
//! # One state machine, two runtimes
//!
//! A [`Context`] is a pure *effect buffer*: a callback records sends, timer
//! requests, cancellations and an optional halt, and whoever constructed the
//! context applies them afterwards. Nothing in here is specific to the
//! discrete-event simulator — the engine in this crate builds contexts for
//! simulated time, and the `atum-net` TCP runtime builds the very same
//! contexts ([`Context::for_runtime`]) for wall-clock time and real sockets.
//! The protocol state machines ([`Node`] implementations) are byte-for-byte
//! identical in both worlds.
//!
//! # The simnet-determinism invariant
//!
//! Simulation runs must stay **bit-identical for a fixed seed** (the
//! `fabric_equivalence` golden tests pin this). Everything a [`Node`] can
//! observe through a [`Context`] is therefore deterministic in the
//! simulator: `now` is simulated time, `rng` is the node's seeded ChaCha8
//! stream, and timer handles come from the engine's counter. Runtime
//! integrations must preserve this contract:
//!
//! * apply effects in buffer order — sends in `outbox` order, then timers,
//!   then cancellations (a timer set *and* cancelled in one callback stays
//!   cancelled);
//! * never reach into a node between callbacks;
//! * never add observable inputs (real time, OS randomness, thread identity)
//!   to this surface. A real runtime is free to be nondeterministic in when
//!   callbacks run, but the *API* through which nodes act must not grow
//!   nondeterministic observables that would leak into simulated runs.

use atum_types::{Duration, Instant, NodeId, WireSize};
use rand_chacha::ChaCha8Rng;

/// A message queued for sending, together with its size accounting.
#[derive(Debug, Clone)]
pub struct OutboundMessage<M> {
    /// Destination node.
    pub to: NodeId,
    /// Payload.
    pub msg: M,
    /// Size in bytes charged to the link (serialisation delay, stats).
    pub size: usize,
}

/// A timer scheduled by a node. Returned by [`Context::set_timer`]; can be
/// cancelled with [`Context::cancel_timer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TimerHandle(pub(crate) u64);

impl TimerHandle {
    /// The raw handle value (runtime bookkeeping).
    pub fn raw(self) -> u64 {
        self.0
    }
}

/// A timer requested through [`Context::set_timer`], waiting to be armed by
/// the runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimerRequest {
    /// Delay from the callback's `now`.
    pub delay: Duration,
    /// Tag passed back to [`Node::on_timer`].
    pub tag: u64,
    /// Handle identifying this timer for cancellation.
    pub handle: u64,
}

/// The effects one callback produced, for the hosting runtime to apply:
/// sends in order, then new timers, then cancellations, then the halt flag.
#[derive(Debug)]
pub struct ContextEffects<M> {
    /// Messages to transmit, in send order.
    pub outbox: Vec<OutboundMessage<M>>,
    /// Timers to arm.
    pub new_timers: Vec<TimerRequest>,
    /// Handles of timers to disarm. Applied *after* `new_timers`, so a timer
    /// set and cancelled within the same callback stays cancelled.
    pub cancelled_timers: Vec<u64>,
    /// The node asked to halt (no further events must be delivered to it).
    pub halted: bool,
}

impl<M> Default for ContextEffects<M> {
    fn default() -> Self {
        ContextEffects::new()
    }
}

impl<M> ContextEffects<M> {
    /// Empty effect buffers.
    pub fn new() -> Self {
        ContextEffects {
            outbox: Vec::new(),
            new_timers: Vec::new(),
            cancelled_timers: Vec::new(),
            halted: false,
        }
    }

    /// Clears the buffers, keeping their capacity for reuse across events.
    pub fn clear(&mut self) {
        self.outbox.clear();
        self.new_timers.clear();
        self.cancelled_timers.clear();
        self.halted = false;
    }
}

/// The interface a node uses to act on the world during a callback.
///
/// A `Context` is only valid for the duration of one callback invocation; all
/// effects (sends, timers) are applied by the hosting runtime when the
/// callback returns (see the module docs for the ordering contract).
pub struct Context<'a, M> {
    pub(crate) own_id: NodeId,
    pub(crate) now: Instant,
    pub(crate) rng: &'a mut ChaCha8Rng,
    pub(crate) effects: ContextEffects<M>,
    pub(crate) next_timer_handle: &'a mut u64,
}

// Manual so `M` needs no `Debug` bound; the buffered effects and the RNG
// stream are runtime plumbing, not state worth printing.
impl<M> std::fmt::Debug for Context<'_, M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Context")
            .field("own_id", &self.own_id)
            .field("now", &self.now)
            .field("next_timer_handle", &self.next_timer_handle)
            .finish_non_exhaustive()
    }
}

impl<'a, M: WireSize> Context<'a, M> {
    /// Builds a context for an external runtime (the TCP runtime, tests).
    ///
    /// `effects` may carry recycled (cleared) buffers; retrieve the recorded
    /// effects afterwards with [`Context::into_effects`] and apply them in
    /// the order the module docs specify. `next_timer_handle` must be a
    /// counter the runtime keeps per node so handles stay unique.
    pub fn for_runtime(
        own_id: NodeId,
        now: Instant,
        rng: &'a mut ChaCha8Rng,
        next_timer_handle: &'a mut u64,
        effects: ContextEffects<M>,
    ) -> Self {
        Context {
            own_id,
            now,
            rng,
            effects,
            next_timer_handle,
        }
    }

    /// Consumes the context, returning the effects the callback recorded.
    pub fn into_effects(self) -> ContextEffects<M> {
        self.effects
    }

    /// The identifier of the node this context belongs to.
    pub fn id(&self) -> NodeId {
        self.own_id
    }

    /// Current time (simulated or wall-clock, depending on the runtime).
    pub fn now(&self) -> Instant {
        self.now
    }

    /// Deterministic per-node random number generator.
    pub fn rng(&mut self) -> &mut ChaCha8Rng {
        self.rng
    }

    /// Sends `msg` to `to`. The size is taken from [`WireSize`].
    pub fn send(&mut self, to: NodeId, msg: M) {
        let size = msg.wire_size() + atum_types::wire::ENVELOPE_OVERHEAD;
        self.send_sized(to, msg, size);
    }

    /// Sends `msg` to `to` charging an explicit size (used when the logical
    /// payload stands in for a larger physical one, e.g. file chunks).
    pub fn send_sized(&mut self, to: NodeId, msg: M, size: usize) {
        self.effects.outbox.push(OutboundMessage { to, msg, size });
    }

    /// Schedules a timer to fire after `delay` with the given tag.
    pub fn set_timer(&mut self, delay: Duration, tag: u64) -> TimerHandle {
        let handle = *self.next_timer_handle;
        *self.next_timer_handle += 1;
        self.effects
            .new_timers
            .push(TimerRequest { delay, tag, handle });
        TimerHandle(handle)
    }

    /// Cancels a previously scheduled timer. Cancelling an already-fired or
    /// unknown timer is a no-op.
    pub fn cancel_timer(&mut self, handle: TimerHandle) {
        self.effects.cancelled_timers.push(handle.0);
    }

    /// Marks this node as halted: the runtime will deliver no further events
    /// to it (used by `leave` once a node has fully departed).
    pub fn halt(&mut self) {
        self.effects.halted = true;
    }
}

/// A simulated node (actor).
///
/// All methods receive a [`Context`] for interacting with the network and the
/// clock. Implementations must be deterministic given the context's RNG.
pub trait Node<M>: Sized {
    /// Called once when the node is added to the simulation.
    fn on_start(&mut self, _ctx: &mut Context<'_, M>) {}

    /// Called when a message from `from` is delivered.
    fn on_message(&mut self, from: NodeId, msg: M, ctx: &mut Context<'_, M>);

    /// Called when a timer set through [`Context::set_timer`] fires.
    fn on_timer(&mut self, tag: u64, ctx: &mut Context<'_, M>);
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn make_ctx<'a, M: WireSize>(rng: &'a mut ChaCha8Rng, next: &'a mut u64) -> Context<'a, M> {
        // The same constructor an external runtime uses.
        Context::for_runtime(
            NodeId::new(3),
            Instant::from_micros(500),
            rng,
            next,
            ContextEffects::new(),
        )
    }

    #[test]
    fn context_collects_sends_and_timers() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let mut next = 10u64;
        let mut ctx: Context<'_, Vec<u8>> = make_ctx(&mut rng, &mut next);
        assert_eq!(ctx.id(), NodeId::new(3));
        assert_eq!(ctx.now().as_micros(), 500);

        ctx.send(NodeId::new(4), vec![1, 2, 3]);
        ctx.send_sized(NodeId::new(5), vec![], 9_999);
        let t1 = ctx.set_timer(Duration::from_secs(1), 7);
        let t2 = ctx.set_timer(Duration::from_secs(2), 8);
        ctx.cancel_timer(t1);
        assert_ne!(t1, t2);

        let effects = ctx.into_effects();
        assert_eq!(effects.outbox.len(), 2);
        assert_eq!(effects.outbox[0].to, NodeId::new(4));
        // 3 bytes + 4-byte length prefix + envelope overhead
        assert_eq!(
            effects.outbox[0].size,
            7 + atum_types::wire::ENVELOPE_OVERHEAD
        );
        assert_eq!(effects.outbox[1].size, 9_999);
        assert_eq!(effects.new_timers.len(), 2);
        assert_eq!(effects.cancelled_timers, vec![10]);
        assert_eq!(next, 12);
    }

    #[test]
    fn halt_flag_is_recorded() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let mut next = 0u64;
        let mut ctx: Context<'_, Vec<u8>> = make_ctx(&mut rng, &mut next);
        assert!(!ctx.effects.halted);
        ctx.halt();
        assert!(ctx.into_effects().halted);
    }

    #[test]
    fn rng_is_deterministic_per_seed() {
        use rand::RngCore;
        let mut rng1 = ChaCha8Rng::seed_from_u64(42);
        let mut rng2 = ChaCha8Rng::seed_from_u64(42);
        let mut next1 = 0u64;
        let mut next2 = 0u64;
        let mut ctx1: Context<'_, Vec<u8>> = make_ctx(&mut rng1, &mut next1);
        let a = ctx1.rng().next_u64();
        let mut ctx2: Context<'_, Vec<u8>> = make_ctx(&mut rng2, &mut next2);
        let b = ctx2.rng().next_u64();
        assert_eq!(a, b);
    }
}
