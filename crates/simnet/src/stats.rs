//! Traffic and delivery statistics collected by the engine.

use serde::{Deserialize, Serialize};

/// Counters the engine maintains while running.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct NetStats {
    /// Messages handed to the network by nodes.
    pub messages_sent: u64,
    /// Messages delivered to their destination's `on_message`.
    pub messages_delivered: u64,
    /// Messages dropped by the loss model.
    pub messages_lost: u64,
    /// Messages dropped because the destination was crashed, removed or
    /// partitioned away.
    pub messages_dropped: u64,
    /// Total bytes handed to the network.
    pub bytes_sent: u64,
    /// Total bytes delivered.
    pub bytes_delivered: u64,
    /// Timer events fired.
    pub timers_fired: u64,
    /// External calls executed.
    pub calls_executed: u64,
    /// Total events processed (messages + timers + calls).
    pub events_processed: u64,
}

impl NetStats {
    /// Fraction of sent messages that were delivered (1.0 when nothing was
    /// sent).
    pub fn delivery_ratio(&self) -> f64 {
        if self.messages_sent == 0 {
            1.0
        } else {
            self.messages_delivered as f64 / self.messages_sent as f64
        }
    }

    /// Resets every counter to zero (useful between experiment phases).
    pub fn reset(&mut self) {
        *self = NetStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivery_ratio_handles_zero_sends() {
        let stats = NetStats::default();
        assert_eq!(stats.delivery_ratio(), 1.0);
    }

    #[test]
    fn delivery_ratio_computes_fraction() {
        let stats = NetStats {
            messages_sent: 10,
            messages_delivered: 7,
            ..NetStats::default()
        };
        assert!((stats.delivery_ratio() - 0.7).abs() < 1e-9);
    }

    #[test]
    fn reset_clears_counters() {
        let mut stats = NetStats {
            messages_sent: 5,
            bytes_sent: 500,
            ..NetStats::default()
        };
        stats.reset();
        assert_eq!(stats, NetStats::default());
    }
}
