//! Byzantine fault tolerant state machine replication (SMR) for volatile
//! groups.
//!
//! The paper keeps Atum agnostic to the SMR engine used inside each vgroup
//! and evaluates two of them:
//!
//! * a **synchronous** engine built on Dolev–Strong authenticated agreement
//!   ([`SyncSmr`]), tolerating `f = ⌊(g−1)/2⌋` Byzantine members, which is
//!   simple and predictable but pays a fixed number of rounds per decision;
//! * an **asynchronous** (eventually synchronous) engine in the style of
//!   PBFT ([`AsyncSmr`]), tolerating `f = ⌊(g−1)/3⌋`, which decides as fast as
//!   the network allows but needs view changes when the leader is faulty.
//!
//! Both engines implement the [`Replication`] trait: a pure state machine
//! that consumes proposals, peer messages and clock ticks, and emits
//! [`Action`]s (messages to send, operations decided). The Atum group layer
//! drives whichever engine the [`SmrMode`](atum_types::SmrMode) selects and
//! applies decided operations to the vgroup state.
//!
//! Membership changes use the SMART approach: every reconfiguration starts a
//! new *epoch* with a fresh instance; operations that were in flight but not
//! decided must be re-proposed by the layer above.
//!
//! # Example
//!
//! ```
//! use atum_smr::{testkit::LockstepCluster, SmrConfig};
//! use atum_types::{NodeId, SmrMode};
//!
//! // Four correct replicas agree on two operations.
//! let mut cluster = LockstepCluster::new(4, SmrMode::Asynchronous, SmrConfig::default(), 7);
//! cluster.propose(NodeId::new(0), b"op-a".to_vec());
//! cluster.propose(NodeId::new(2), b"op-b".to_vec());
//! cluster.run_to_quiescence();
//! cluster.assert_agreement();
//! assert_eq!(cluster.decided(NodeId::new(1)).len(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod pbft;
pub mod protocol;
pub mod sync;
pub mod testkit;

pub use pbft::AsyncSmr;
pub use protocol::{Action, ByzantineMode, Decision, Replication, SmrConfig, SmrMessage, SmrOp};
pub use sync::SyncSmr;

use atum_crypto::KeyRegistry;
use atum_types::{Composition, NodeId, SmrMode};
use std::sync::Arc;

/// A replication engine chosen at runtime from [`SmrMode`].
#[derive(Debug, Clone)]
pub enum Engine<O: SmrOp> {
    /// Synchronous Dolev–Strong-based engine.
    Sync(SyncSmr<O>),
    /// Asynchronous PBFT-style engine.
    Async(AsyncSmr<O>),
}

impl<O: SmrOp> Engine<O> {
    /// Creates the engine selected by `mode`.
    pub fn new(
        mode: SmrMode,
        me: NodeId,
        members: Composition,
        config: SmrConfig,
        registry: Arc<KeyRegistry>,
        start: atum_types::Instant,
    ) -> Self {
        match mode {
            SmrMode::Synchronous => {
                Engine::Sync(SyncSmr::new(me, members, config, registry, start))
            }
            SmrMode::Asynchronous => {
                Engine::Async(AsyncSmr::new(me, members, config, registry, start))
            }
        }
    }
}

impl<O: SmrOp> Replication<O> for Engine<O> {
    fn propose(&mut self, op: O, now: atum_types::Instant) -> Vec<Action<O>> {
        match self {
            Engine::Sync(e) => e.propose(op, now),
            Engine::Async(e) => e.propose(op, now),
        }
    }

    fn handle(
        &mut self,
        from: NodeId,
        msg: SmrMessage<O>,
        now: atum_types::Instant,
    ) -> Vec<Action<O>> {
        match self {
            Engine::Sync(e) => e.handle(from, msg, now),
            Engine::Async(e) => e.handle(from, msg, now),
        }
    }

    fn tick(&mut self, now: atum_types::Instant) -> Vec<Action<O>> {
        match self {
            Engine::Sync(e) => e.tick(now),
            Engine::Async(e) => e.tick(now),
        }
    }

    fn members(&self) -> &Composition {
        match self {
            Engine::Sync(e) => e.members(),
            Engine::Async(e) => e.members(),
        }
    }

    fn set_byzantine(&mut self, mode: ByzantineMode) {
        match self {
            Engine::Sync(e) => e.set_byzantine(mode),
            Engine::Async(e) => e.set_byzantine(mode),
        }
    }
}
