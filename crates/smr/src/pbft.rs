//! Asynchronous (eventually synchronous) SMR in the style of PBFT.
//!
//! The protocol is the classic three-phase pattern: the primary of the
//! current view assigns sequence numbers and sends `PrePrepare`; backups echo
//! `Prepare`; once a replica has a pre-prepare plus prepares from `2f + 1`
//! distinct replicas it sends `Commit`; once it has `2f + 1` commits it
//! delivers the operation in sequence order. `f = ⌊(g−1)/3⌋`.
//!
//! When a replica's own proposals make no progress for a configurable
//! timeout, it votes to change the view. The incoming primary collects
//! `2f + 1` view-change votes, restates every operation that was *prepared*
//! anywhere in the quorum (such operations may have been delivered by some
//! replica and must keep their sequence number), explicitly *skips* sequence
//! numbers proven unused, and resumes ordering. This mirrors PBFT's new-view
//! construction with null requests filling the gaps.
//!
//! Checkpointing/garbage collection is simplified: delivered slots are pruned
//! immediately, which is adequate for the vgroup sizes Atum uses (a handful
//! to a few tens of members).

use crate::protocol::{Action, ByzantineMode, Decision, Replication, SmrConfig, SmrMessage, SmrOp};
use atum_crypto::{Digest, KeyRegistry};
use atum_types::{Composition, Instant, NodeId};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

#[derive(Debug, Clone)]
struct Slot<O> {
    view: u64,
    op: Option<O>,
    digest: Option<Digest>,
    prepares: BTreeSet<NodeId>,
    commits: BTreeSet<NodeId>,
    sent_commit: bool,
    prepared: bool,
}

impl<O> Default for Slot<O> {
    fn default() -> Self {
        Slot {
            view: 0,
            op: None,
            digest: None,
            prepares: BTreeSet::new(),
            commits: BTreeSet::new(),
            sent_commit: false,
            prepared: false,
        }
    }
}

#[derive(Debug, Clone)]
struct PendingOp<O> {
    op: O,
    digest: Digest,
    since: Instant,
}

/// The asynchronous (PBFT-style) replication engine.
#[derive(Clone)]
pub struct AsyncSmr<O: SmrOp> {
    me: NodeId,
    members: Composition,
    config: SmrConfig,
    #[allow(dead_code)] // kept for parity with the synchronous engine / future message signing
    registry: Arc<KeyRegistry>,
    view: u64,
    /// Next sequence number this replica would assign as primary.
    next_seq: u64,
    /// Highest contiguously delivered sequence number (0 = nothing yet).
    last_delivered: u64,
    log: BTreeMap<u64, Slot<O>>,
    /// Sequence numbers proven unused by a new-view; treated as delivered.
    skips: BTreeSet<u64>,
    /// Digests the primary has already assigned, to deduplicate requests.
    /// Ordered (determinism lint): the set feeds state fingerprints.
    assigned: BTreeSet<Digest>,
    /// Operations this replica wants ordered and has not yet seen delivered.
    own_pending: Vec<PendingOp<O>>,
    /// Operations other replicas asked to have ordered (observed via
    /// re-broadcast requests); used to arm the view-change timer on backups
    /// that did not originate the request, as PBFT does.
    observed: Vec<PendingOp<O>>,
    /// View-change votes per target view: voter -> prepared ops they carry.
    /// The inner map is ordered: `maybe_enter_new_view` unions the votes
    /// first-wins, so iteration order is behaviour — a hash map here made
    /// the new-view op assignment (and with it whole async runs) differ
    /// between processes for the same seed. The outer map is now ordered
    /// too, so the whole engine state has a canonical rendering.
    vc_votes: BTreeMap<u64, BTreeMap<NodeId, Vec<(u64, O)>>>,
    /// The view this replica is currently trying to move to, if any.
    vc_target: Option<u64>,
    /// Last time this replica delivered something or reset its patience.
    last_progress: Instant,
    byzantine: ByzantineMode,
}

impl<O: SmrOp> std::fmt::Debug for AsyncSmr<O> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Skips the key registry (shared immutable infrastructure): this
        // rendering doubles as the model checker's canonical replica state.
        f.debug_struct("AsyncSmr")
            .field("me", &self.me)
            .field("members", &self.members)
            .field("view", &self.view)
            .field("next_seq", &self.next_seq)
            .field("last_delivered", &self.last_delivered)
            .field("log", &self.log)
            .field("skips", &self.skips)
            .field("assigned", &self.assigned)
            .field("own_pending", &self.own_pending)
            .field("observed", &self.observed)
            .field("vc_votes", &self.vc_votes)
            .field("vc_target", &self.vc_target)
            .field("last_progress", &self.last_progress)
            .field("byzantine", &self.byzantine)
            .finish()
    }
}

impl<O: SmrOp> AsyncSmr<O> {
    /// Creates an engine for member `me` of `members`.
    pub fn new(
        me: NodeId,
        members: Composition,
        config: SmrConfig,
        registry: Arc<KeyRegistry>,
        start: Instant,
    ) -> Self {
        assert!(members.contains(me), "engine owner must be a group member");
        AsyncSmr {
            me,
            members,
            config,
            registry,
            view: 0,
            next_seq: 1,
            last_delivered: 0,
            log: BTreeMap::new(),
            skips: BTreeSet::new(),
            assigned: BTreeSet::new(),
            own_pending: Vec::new(),
            observed: Vec::new(),
            vc_votes: BTreeMap::new(),
            vc_target: None,
            last_progress: start,
            byzantine: ByzantineMode::Correct,
        }
    }

    /// Number of faults tolerated: ⌊(g−1)/3⌋.
    pub fn max_faults(&self) -> usize {
        self.members.len().saturating_sub(1) / 3
    }

    /// Quorum size: `2f + 1`.
    pub fn quorum(&self) -> usize {
        2 * self.max_faults() + 1
    }

    /// The primary of a view.
    pub fn primary_of(&self, view: u64) -> NodeId {
        self.members
            .member_at((view % self.members.len() as u64) as usize)
            .expect("group is never empty")
    }

    /// The primary of the current view.
    pub fn current_primary(&self) -> NodeId {
        self.primary_of(self.view)
    }

    /// Current view number.
    pub fn view(&self) -> u64 {
        self.view
    }

    /// Number of own operations still awaiting delivery.
    pub fn pending_len(&self) -> usize {
        self.own_pending.len()
    }

    fn broadcast(&self, msg: SmrMessage<O>, actions: &mut Vec<Action<O>>) {
        for peer in self.members.iter().filter(|&p| p != self.me) {
            actions.push(Action::Send {
                to: peer,
                msg: msg.clone(),
            });
        }
    }

    /// Primary-side: assign a sequence number to `op` and start ordering it.
    fn assign_and_preprepare(&mut self, op: O, actions: &mut Vec<Action<O>>) {
        let digest = op.digest();
        if self.assigned.contains(&digest) {
            return;
        }
        self.assigned.insert(digest);
        let seq = self.next_seq;
        self.next_seq += 1;
        let view = self.view;
        let me = self.me;
        let slot = self.log.entry(seq).or_default();
        slot.view = view;
        slot.op = Some(op.clone());
        slot.digest = Some(digest);
        slot.prepares.insert(me);
        let preprepare = SmrMessage::PrePrepare { view, seq, op };
        match self.byzantine {
            ByzantineMode::Correct => self.broadcast(preprepare, actions),
            ByzantineMode::Equivocate => {
                // Partial broadcast: only half of the peers learn the
                // assignment; the protocol must still make progress via view
                // change or fail to deliver, but never diverge.
                let peers: Vec<NodeId> = self.members.iter().filter(|&p| p != self.me).collect();
                for peer in peers.iter().take(peers.len() / 2) {
                    actions.push(Action::Send {
                        to: *peer,
                        msg: preprepare.clone(),
                    });
                }
            }
            ByzantineMode::Silent => {}
        }
        self.maybe_advance(seq, actions);
    }

    /// Checks whether `seq` can move to prepared/committed/delivered state.
    fn maybe_advance(&mut self, seq: u64, actions: &mut Vec<Action<O>>) {
        let quorum = self.quorum();
        let me = self.me;
        let view = self.view;
        let Some(slot) = self.log.get_mut(&seq) else {
            return;
        };
        if slot.op.is_none() {
            return;
        }
        // Prepared: pre-prepare (primary's vote) + enough prepares.
        if !slot.prepared && slot.prepares.len() >= quorum {
            slot.prepared = true;
        }
        if slot.prepared && !slot.sent_commit && self.byzantine == ByzantineMode::Correct {
            slot.sent_commit = true;
            slot.commits.insert(me);
            let digest = slot.digest.expect("prepared slot has a digest");
            let msg = SmrMessage::Commit { view, seq, digest };
            let peers: Vec<NodeId> = self.members.iter().filter(|&p| p != me).collect();
            for peer in peers {
                actions.push(Action::Send {
                    to: peer,
                    msg: msg.clone(),
                });
            }
        }
        self.deliver_ready(actions);
    }

    /// Delivers committed slots in contiguous sequence order.
    fn deliver_ready(&mut self, actions: &mut Vec<Action<O>>) {
        let quorum = self.quorum();
        loop {
            let next = self.last_delivered + 1;
            if self.skips.contains(&next) {
                self.skips.remove(&next);
                self.last_delivered = next;
                continue;
            }
            let ready = match self.log.get(&next) {
                Some(slot) => slot.prepared && slot.commits.len() >= quorum && slot.op.is_some(),
                None => false,
            };
            if !ready {
                break;
            }
            let slot = self.log.remove(&next).expect("checked above");
            let op = slot.op.expect("checked above");
            let digest = slot.digest.expect("slot with op has digest");
            self.own_pending.retain(|p| p.digest != digest);
            self.observed.retain(|p| p.digest != digest);
            self.last_delivered = next;
            if self.next_seq <= next {
                self.next_seq = next + 1;
            }
            actions.push(Action::Deliver(Decision {
                seq: next,
                proposer: self.primary_of(slot.view),
                op,
            }));
        }
    }

    /// Starts (or escalates) a view change towards `target`.
    fn start_view_change(&mut self, target: u64, actions: &mut Vec<Action<O>>) {
        if self.byzantine != ByzantineMode::Correct {
            return;
        }
        if target <= self.view {
            return;
        }
        if self.vc_target == Some(target) {
            return;
        }
        self.vc_target = Some(target);
        let prepared: Vec<(u64, O)> = self
            .log
            .iter()
            .filter(|(seq, slot)| **seq > self.last_delivered && slot.prepared)
            .filter_map(|(seq, slot)| slot.op.clone().map(|op| (*seq, op)))
            .collect();
        self.vc_votes
            .entry(target)
            .or_default()
            .insert(self.me, prepared.clone());
        self.broadcast(
            SmrMessage::ViewChange {
                new_view: target,
                prepared,
            },
            actions,
        );
        self.maybe_enter_new_view(target, actions);
    }

    /// If this replica is the primary of `target` and has a quorum of
    /// view-change votes, construct and distribute the new view.
    fn maybe_enter_new_view(&mut self, target: u64, actions: &mut Vec<Action<O>>) {
        if self.primary_of(target) != self.me || target <= self.view {
            return;
        }
        let votes = match self.vc_votes.get(&target) {
            Some(v) if v.len() >= self.quorum() => v.clone(),
            _ => return,
        };
        // Union of prepared operations, keyed by sequence number.
        let mut kept: BTreeMap<u64, O> = BTreeMap::new();
        for prepared in votes.values() {
            for (seq, op) in prepared {
                kept.entry(*seq).or_insert_with(|| op.clone());
            }
        }
        let max_kept = kept.keys().max().copied().unwrap_or(self.last_delivered);
        let skips: Vec<u64> = (self.last_delivered + 1..=max_kept)
            .filter(|s| !kept.contains_key(s))
            .collect();
        let ops: Vec<(u64, O)> = kept.into_iter().collect();
        let msg = SmrMessage::NewView {
            view: target,
            ops: ops.clone(),
            skips: skips.clone(),
        };
        self.broadcast(msg, actions);
        self.adopt_new_view(target, ops, skips, actions);
    }

    /// Applies a new view locally (both on the new primary and on backups).
    fn adopt_new_view(
        &mut self,
        view: u64,
        ops: Vec<(u64, O)>,
        skips: Vec<u64>,
        actions: &mut Vec<Action<O>>,
    ) {
        self.view = view;
        self.vc_target = None;
        self.vc_votes.retain(|v, _| *v > view);
        // Drop stale, never-prepared slots from older views; they are either
        // restated below or covered by the skip set.
        self.log
            .retain(|_, slot| slot.prepared || slot.view >= view);
        for s in &skips {
            if *s > self.last_delivered {
                self.skips.insert(*s);
            }
        }
        let mut max_seq = self.last_delivered;
        let me = self.me;
        let primary = self.primary_of(view);
        for (seq, op) in ops {
            max_seq = max_seq.max(seq);
            if seq <= self.last_delivered {
                continue;
            }
            let digest = op.digest();
            self.assigned.insert(digest);
            let slot = self.log.entry(seq).or_default();
            slot.view = view;
            slot.op = Some(op);
            slot.digest = Some(digest);
            slot.prepared = false;
            slot.sent_commit = false;
            slot.prepares.insert(primary);
            slot.prepares.insert(me);
            if me != primary && self.byzantine == ByzantineMode::Correct {
                let msg = SmrMessage::Prepare { view, seq, digest };
                let peers: Vec<NodeId> = self.members.iter().filter(|&p| p != me).collect();
                for peer in peers {
                    actions.push(Action::Send {
                        to: peer,
                        msg: msg.clone(),
                    });
                }
            }
        }
        self.next_seq = self.next_seq.max(max_seq + 1);
        self.last_progress = self.last_progress.max(Instant::ZERO);
        // Re-submit own pending operations to the new primary.
        let pending: Vec<O> = self.own_pending.iter().map(|p| p.op.clone()).collect();
        if self.byzantine == ByzantineMode::Correct {
            for op in pending {
                if self.current_primary() == self.me {
                    self.assign_and_preprepare(op, actions);
                } else {
                    actions.push(Action::Send {
                        to: self.current_primary(),
                        msg: SmrMessage::Request { op },
                    });
                }
            }
        }
        let seqs: Vec<u64> = self.log.keys().copied().collect();
        for seq in seqs {
            self.maybe_advance(seq, actions);
        }
        self.deliver_ready(actions);
    }
}

impl<O: SmrOp> Replication<O> for AsyncSmr<O> {
    fn propose(&mut self, op: O, now: Instant) -> Vec<Action<O>> {
        let mut actions = Vec::new();
        if self.byzantine == ByzantineMode::Silent {
            return actions;
        }
        self.own_pending.push(PendingOp {
            digest: op.digest(),
            op: op.clone(),
            since: now,
        });
        if self.current_primary() == self.me {
            self.assign_and_preprepare(op, &mut actions);
        } else {
            actions.push(Action::Send {
                to: self.current_primary(),
                msg: SmrMessage::Request { op },
            });
        }
        actions.push(Action::ScheduleTick {
            at: now + self.config.view_change_timeout(),
        });
        actions
    }

    fn handle(&mut self, from: NodeId, msg: SmrMessage<O>, now: Instant) -> Vec<Action<O>> {
        let mut actions = Vec::new();
        if self.byzantine == ByzantineMode::Silent {
            return actions;
        }
        if !self.members.contains(from) {
            return actions;
        }
        match msg {
            SmrMessage::Request { op } => {
                if self.current_primary() == self.me {
                    self.assign_and_preprepare(op, &mut actions);
                } else {
                    // Remember the request so that, like PBFT backups that
                    // receive a client request, we start suspecting the
                    // primary if it never orders it.
                    let digest = op.digest();
                    if !self.observed.iter().any(|p| p.digest == digest)
                        && !self.own_pending.iter().any(|p| p.digest == digest)
                    {
                        self.observed.push(PendingOp {
                            op,
                            digest,
                            since: now,
                        });
                        actions.push(Action::ScheduleTick {
                            at: now + self.config.view_change_timeout(),
                        });
                    }
                }
            }
            SmrMessage::PrePrepare { view, seq, op } => {
                if view != self.view || from != self.primary_of(view) || seq <= self.last_delivered
                {
                    return actions;
                }
                let digest = op.digest();
                let me = self.me;
                let slot = self.log.entry(seq).or_default();
                // Refuse to overwrite a slot already prepared with different
                // content (safety), but allow adopting content for newer
                // views or empty slots.
                if slot.prepared && slot.digest.is_some_and(|d| d != digest) {
                    return actions;
                }
                if slot.digest.is_some_and(|d| d != digest) && slot.view >= view {
                    return actions;
                }
                slot.view = view;
                slot.op = Some(op);
                slot.digest = Some(digest);
                slot.prepares.insert(from);
                slot.prepares.insert(me);
                let prepare = SmrMessage::Prepare { view, seq, digest };
                self.broadcast(prepare, &mut actions);
                self.maybe_advance(seq, &mut actions);
            }
            SmrMessage::Prepare { view, seq, digest } => {
                if view != self.view || seq <= self.last_delivered {
                    return actions;
                }
                let slot = self.log.entry(seq).or_default();
                if slot.digest.is_some_and(|d| d != digest) {
                    return actions;
                }
                slot.prepares.insert(from);
                self.maybe_advance(seq, &mut actions);
            }
            SmrMessage::Commit { view, seq, digest } => {
                if view != self.view || seq <= self.last_delivered {
                    return actions;
                }
                let slot = self.log.entry(seq).or_default();
                if slot.digest.is_some_and(|d| d != digest) {
                    return actions;
                }
                slot.commits.insert(from);
                self.maybe_advance(seq, &mut actions);
            }
            SmrMessage::ViewChange { new_view, prepared } => {
                if new_view <= self.view {
                    return actions;
                }
                self.vc_votes
                    .entry(new_view)
                    .or_default()
                    .insert(from, prepared);
                let votes = self.vc_votes.get(&new_view).map(|v| v.len()).unwrap_or(0);
                // Join the view change once f+1 replicas vouch for it, so a
                // single faulty replica cannot drag the group through views.
                if votes > self.max_faults() && self.vc_target.is_none_or(|t| t < new_view) {
                    self.start_view_change(new_view, &mut actions);
                }
                self.maybe_enter_new_view(new_view, &mut actions);
            }
            SmrMessage::NewView { view, ops, skips } => {
                if view < self.view || from != self.primary_of(view) {
                    return actions;
                }
                self.adopt_new_view(view, ops, skips, &mut actions);
                self.last_progress = now;
            }
            SmrMessage::SyncValue { .. } => {}
        }
        if actions.iter().any(|a| matches!(a, Action::Deliver(_))) {
            self.last_progress = now;
        }
        actions
    }

    fn tick(&mut self, now: Instant) -> Vec<Action<O>> {
        let mut actions = Vec::new();
        if self.byzantine == ByzantineMode::Silent {
            return actions;
        }
        if self.own_pending.is_empty() && self.observed.is_empty() {
            return actions;
        }
        let timeout = self.config.view_change_timeout();
        let oldest = self
            .own_pending
            .iter()
            .chain(self.observed.iter())
            .map(|p| p.since)
            .min()
            .unwrap_or(now);
        let stalled_since = oldest.max(self.last_progress);
        if now.saturating_since(stalled_since) >= timeout {
            // Re-broadcast our own stuck requests so every replica arms its
            // own suspicion timer (PBFT clients do this by multicasting the
            // request after a timeout).
            let stuck: Vec<O> = self.own_pending.iter().map(|p| p.op.clone()).collect();
            for op in stuck {
                self.broadcast(SmrMessage::Request { op }, &mut actions);
            }
            let target = self.vc_target.unwrap_or(self.view).max(self.view) + 1;
            self.last_progress = now;
            self.start_view_change(target, &mut actions);
        }
        actions.push(Action::ScheduleTick { at: now + timeout });
        actions
    }

    fn members(&self) -> &Composition {
        &self.members
    }

    fn set_byzantine(&mut self, mode: ByzantineMode) {
        self.byzantine = mode;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit::LockstepCluster;
    use atum_types::SmrMode;

    fn cluster(n: usize, seed: u64) -> LockstepCluster {
        LockstepCluster::new(n, SmrMode::Asynchronous, SmrConfig::default(), seed)
    }

    #[test]
    fn quorum_arithmetic() {
        let mut registry = KeyRegistry::new();
        for i in 0..7 {
            registry.register(NodeId::new(i), 1);
        }
        let members: Composition = (0..7).map(NodeId::new).collect();
        let smr: AsyncSmr<Vec<u8>> = AsyncSmr::new(
            NodeId::new(0),
            members,
            SmrConfig::default(),
            registry.shared(),
            Instant::ZERO,
        );
        assert_eq!(smr.max_faults(), 2);
        assert_eq!(smr.quorum(), 5);
        assert_eq!(smr.primary_of(0), NodeId::new(0));
        assert_eq!(smr.primary_of(8), NodeId::new(1));
    }

    #[test]
    fn primary_proposal_is_delivered_by_all() {
        let mut c = cluster(4, 1);
        c.propose(NodeId::new(0), b"from-primary".to_vec());
        c.run_to_quiescence();
        c.assert_agreement();
        for i in 0..4 {
            let d = c.decided(NodeId::new(i));
            assert_eq!(d.len(), 1, "node {i}");
            assert_eq!(d[0].op, b"from-primary".to_vec());
        }
    }

    #[test]
    fn backup_proposal_is_forwarded_and_delivered() {
        let mut c = cluster(4, 2);
        c.propose(NodeId::new(3), b"from-backup".to_vec());
        c.run_to_quiescence();
        c.assert_agreement();
        assert_eq!(c.decided(NodeId::new(0)).len(), 1);
    }

    #[test]
    fn many_proposals_from_all_replicas_agree() {
        let mut c = cluster(7, 3);
        for i in 0..7u64 {
            c.propose(NodeId::new(i), format!("op{i}").into_bytes());
            c.propose(NodeId::new(i), format!("op{i}b").into_bytes());
        }
        c.run_to_quiescence();
        c.assert_agreement();
        assert_eq!(c.decided(NodeId::new(4)).len(), 14);
        // Sequence numbers are contiguous starting at 1.
        let seqs: Vec<u64> = c.decided(NodeId::new(4)).iter().map(|d| d.seq).collect();
        assert_eq!(seqs, (1..=14).collect::<Vec<u64>>());
    }

    #[test]
    fn silent_backups_do_not_prevent_progress() {
        let mut c = cluster(7, 4);
        c.set_byzantine(NodeId::new(5), ByzantineMode::Silent);
        c.set_byzantine(NodeId::new(6), ByzantineMode::Silent);
        c.propose(NodeId::new(1), b"still-works".to_vec());
        c.run_to_quiescence();
        let correct: Vec<NodeId> = (0..5).map(NodeId::new).collect();
        c.assert_agreement_among(&correct);
        for n in &correct {
            assert_eq!(c.decided(*n).len(), 1);
        }
    }

    #[test]
    fn silent_primary_triggers_view_change_and_delivery_resumes() {
        let mut c = cluster(4, 5);
        // Node 0 is the primary of view 0; make it silent.
        c.set_byzantine(NodeId::new(0), ByzantineMode::Silent);
        c.propose(NodeId::new(2), b"needs-view-change".to_vec());
        c.run_for_secs(120);
        let correct: Vec<NodeId> = (1..4).map(NodeId::new).collect();
        c.assert_agreement_among(&correct);
        for n in &correct {
            assert_eq!(
                c.decided(*n).len(),
                1,
                "node {n} should deliver after view change"
            );
        }
        // The view advanced beyond 0.
        assert!(c.async_view(NodeId::new(1)) > 0);
    }

    #[test]
    fn equivocating_primary_cannot_cause_divergence() {
        let mut c = cluster(4, 6);
        c.set_byzantine(NodeId::new(0), ByzantineMode::Equivocate);
        c.propose(NodeId::new(0), b"evil".to_vec());
        c.propose(NodeId::new(1), b"good".to_vec());
        c.run_for_secs(180);
        let correct: Vec<NodeId> = (1..4).map(NodeId::new).collect();
        // Whatever was delivered, correct replicas must agree on it.
        c.assert_agreement_among(&correct);
        // The good operation eventually gets through (after view change).
        let ops: Vec<Vec<u8>> = c
            .decided(NodeId::new(1))
            .iter()
            .map(|d| d.op.clone())
            .collect();
        assert!(ops.contains(&b"good".to_vec()));
    }

    #[test]
    fn duplicate_requests_are_assigned_once() {
        let mut c = cluster(4, 7);
        c.propose(NodeId::new(1), b"dup".to_vec());
        c.propose(NodeId::new(2), b"dup".to_vec());
        c.run_to_quiescence();
        c.assert_agreement();
        assert_eq!(c.decided(NodeId::new(0)).len(), 1);
    }

    #[test]
    fn successive_view_changes_when_multiple_primaries_fail() {
        let mut c = cluster(7, 8);
        // Primaries of views 0 and 1 are both silent.
        c.set_byzantine(NodeId::new(0), ByzantineMode::Silent);
        c.set_byzantine(NodeId::new(1), ByzantineMode::Silent);
        c.propose(NodeId::new(3), b"two-hops".to_vec());
        c.run_for_secs(300);
        let correct: Vec<NodeId> = (2..7).map(NodeId::new).collect();
        c.assert_agreement_among(&correct);
        for n in &correct {
            assert_eq!(c.decided(*n).len(), 1, "node {n}");
        }
        assert!(c.async_view(NodeId::new(2)) >= 2);
    }
}
