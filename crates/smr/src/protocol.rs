//! The [`Replication`] trait shared by both SMR engines, and the common
//! message / action / configuration types.

use atum_crypto::{Digest, SignatureChain};
use atum_types::{
    Composition, Duration, Instant, NodeId, WireDecode, WireEncode, WireError, WireReader,
    WireWriter,
};
use serde::{Deserialize, Serialize};

/// An operation that can be ordered by the SMR engines.
///
/// The Atum group layer instantiates `O` with its own operation enum (joins,
/// leaves, shuffles, broadcasts, ...). The trait only asks for what the
/// engines need: a content digest (what gets signed / quorum-matched) and a
/// wire-size estimate for bandwidth accounting.
pub trait SmrOp: Clone + Eq + std::fmt::Debug {
    /// Content digest of the operation.
    fn digest(&self) -> Digest;
    /// Approximate encoded size in bytes.
    fn wire_size(&self) -> usize;
}

/// Raw byte strings are valid operations (used by tests and benchmarks).
impl SmrOp for Vec<u8> {
    fn digest(&self) -> Digest {
        Digest::of(self)
    }
    fn wire_size(&self) -> usize {
        4 + self.len()
    }
}

/// A decided operation, in decision order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Decision<O> {
    /// Position in the total order (per epoch, starting at 0).
    pub seq: u64,
    /// The member that proposed the operation.
    pub proposer: NodeId,
    /// The operation itself.
    pub op: O,
}

/// What an engine asks its host to do.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Action<O> {
    /// Send a protocol message to a vgroup peer.
    Send {
        /// Destination member.
        to: NodeId,
        /// Protocol message.
        msg: SmrMessage<O>,
    },
    /// An operation was decided; apply it to the replicated state.
    Deliver(Decision<O>),
    /// Ask the host to call [`Replication::tick`] again no later than this
    /// time (the engines are passive between events).
    ScheduleTick {
        /// When the next tick is needed.
        at: Instant,
    },
}

/// Messages exchanged by the SMR engines.
///
/// A single enum covers both engines so the host can treat them uniformly;
/// each engine ignores the other's variants.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum SmrMessage<O> {
    /// Dolev–Strong value relay (synchronous engine). The chain signs the
    /// batch digest; `slot` identifies the agreement instance.
    SyncValue {
        /// Slot (agreement instance) this value belongs to.
        slot: u64,
        /// The designated sender whose batch this is.
        sender: NodeId,
        /// Batch of operations proposed by `sender` in this slot.
        batch: Vec<O>,
        /// Signature chain over (slot, sender, batch digest).
        chain: SignatureChain,
    },
    /// Client-style request forwarded to the current primary (async engine).
    Request {
        /// The operation to order.
        op: O,
    },
    /// PBFT pre-prepare from the primary.
    PrePrepare {
        /// View number.
        view: u64,
        /// Sequence number assigned by the primary.
        seq: u64,
        /// The operation being ordered.
        op: O,
    },
    /// PBFT prepare vote.
    Prepare {
        /// View number.
        view: u64,
        /// Sequence number.
        seq: u64,
        /// Digest of the operation voted on.
        digest: Digest,
    },
    /// PBFT commit vote.
    Commit {
        /// View number.
        view: u64,
        /// Sequence number.
        seq: u64,
        /// Digest of the operation voted on.
        digest: Digest,
    },
    /// View-change vote: the sender wants to move to `new_view` and reports
    /// the operations it has prepared so far.
    ViewChange {
        /// The view the sender wants to enter.
        new_view: u64,
        /// Prepared operations carried over: (seq, op).
        prepared: Vec<(u64, O)>,
    },
    /// New-view announcement from the incoming primary, restating the
    /// operations that must keep their sequence numbers and the sequence
    /// numbers that are abandoned (never prepared anywhere, hence never
    /// committed) and must be skipped by the delivery order.
    NewView {
        /// The view being entered.
        view: u64,
        /// Operations re-proposed in the new view: (seq, op).
        ops: Vec<(u64, O)>,
        /// Sequence numbers proven unused; receivers skip them.
        skips: Vec<u64>,
    },
}

impl<O: SmrOp> SmrMessage<O> {
    /// Exact encoded wire size of the message when `O` has a codec
    /// implementation (one allocation-free counting pass); falls back to an
    /// estimate per operation via [`SmrOp::wire_size`] otherwise.
    pub fn wire_size(&self) -> usize
    where
        O: WireEncode,
    {
        atum_types::wire::wire_len(self)
    }
}

impl<O: WireEncode> WireEncode for SmrMessage<O> {
    fn wire_encode(&self, w: &mut WireWriter<'_>) {
        match self {
            SmrMessage::SyncValue {
                slot,
                sender,
                batch,
                chain,
            } => {
                w.put_u8(0);
                w.put_u64(*slot);
                sender.wire_encode(w);
                w.put_seq(batch);
                chain.wire_encode(w);
            }
            SmrMessage::Request { op } => {
                w.put_u8(1);
                op.wire_encode(w);
            }
            SmrMessage::PrePrepare { view, seq, op } => {
                w.put_u8(2);
                w.put_u64(*view);
                w.put_u64(*seq);
                op.wire_encode(w);
            }
            SmrMessage::Prepare { view, seq, digest } => {
                w.put_u8(3);
                w.put_u64(*view);
                w.put_u64(*seq);
                digest.wire_encode(w);
            }
            SmrMessage::Commit { view, seq, digest } => {
                w.put_u8(4);
                w.put_u64(*view);
                w.put_u64(*seq);
                digest.wire_encode(w);
            }
            SmrMessage::ViewChange { new_view, prepared } => {
                w.put_u8(5);
                w.put_u64(*new_view);
                w.put_seq(prepared);
            }
            SmrMessage::NewView { view, ops, skips } => {
                w.put_u8(6);
                w.put_u64(*view);
                w.put_seq(ops);
                w.put_seq(skips);
            }
        }
    }
}

impl<O: WireDecode> WireDecode for SmrMessage<O> {
    fn wire_decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(match r.take_u8()? {
            0 => SmrMessage::SyncValue {
                slot: r.take_u64()?,
                sender: NodeId::wire_decode(r)?,
                batch: r.take_seq(1)?,
                chain: SignatureChain::wire_decode(r)?,
            },
            1 => SmrMessage::Request {
                op: O::wire_decode(r)?,
            },
            2 => SmrMessage::PrePrepare {
                view: r.take_u64()?,
                seq: r.take_u64()?,
                op: O::wire_decode(r)?,
            },
            3 => SmrMessage::Prepare {
                view: r.take_u64()?,
                seq: r.take_u64()?,
                digest: Digest::wire_decode(r)?,
            },
            4 => SmrMessage::Commit {
                view: r.take_u64()?,
                seq: r.take_u64()?,
                digest: Digest::wire_decode(r)?,
            },
            5 => SmrMessage::ViewChange {
                new_view: r.take_u64()?,
                prepared: r.take_seq(9)?,
            },
            6 => SmrMessage::NewView {
                view: r.take_u64()?,
                ops: r.take_seq(9)?,
                skips: r.take_seq(8)?,
            },
            _ => return Err(WireError::Malformed("smr-message tag")),
        })
    }
}

/// How a (test-injected) faulty replica misbehaves.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ByzantineMode {
    /// Behaves correctly.
    #[default]
    Correct,
    /// Sends nothing at all (crash-like, but keeps its state).
    Silent,
    /// Proposes conflicting values to different peers where the protocol
    /// allows it (equivocation); otherwise behaves like `Silent`.
    Equivocate,
}

/// Engine configuration shared by both protocols.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SmrConfig {
    /// Round duration for the synchronous engine; also the base unit for the
    /// asynchronous engine's view-change timeout.
    pub round: Duration,
    /// Maximum operations batched into one slot / pre-prepare.
    pub max_batch: usize,
    /// View-change timeout multiplier: the async engine starts a view change
    /// after `view_change_rounds × round` without progress on a pending
    /// request.
    pub view_change_rounds: u32,
}

impl Default for SmrConfig {
    fn default() -> Self {
        SmrConfig {
            round: Duration::from_millis(1_000),
            max_batch: 64,
            view_change_rounds: 4,
        }
    }
}

impl SmrConfig {
    /// The asynchronous engine's view-change timeout.
    pub fn view_change_timeout(&self) -> Duration {
        self.round.saturating_mul(self.view_change_rounds as u64)
    }
}

/// A BFT replication engine driven by its host.
///
/// Hosts call [`propose`](Replication::propose) with operations to order,
/// feed incoming peer messages to [`handle`](Replication::handle), and call
/// [`tick`](Replication::tick) whenever a previously requested
/// [`Action::ScheduleTick`] time is reached. All three return actions the
/// host must carry out.
pub trait Replication<O: SmrOp> {
    /// Submits an operation for ordering.
    fn propose(&mut self, op: O, now: Instant) -> Vec<Action<O>>;

    /// Handles a protocol message from a vgroup peer.
    fn handle(&mut self, from: NodeId, msg: SmrMessage<O>, now: Instant) -> Vec<Action<O>>;

    /// Advances time-driven parts of the protocol (round transitions,
    /// view-change timeouts).
    fn tick(&mut self, now: Instant) -> Vec<Action<O>>;

    /// Current membership of this replication group.
    fn members(&self) -> &Composition;

    /// Configures fault injection for this replica (testing only).
    fn set_byzantine(&mut self, mode: ByzantineMode);
}

/// Helper: extracts the decisions from a list of actions (test convenience).
pub fn decisions<O>(actions: &[Action<O>]) -> Vec<Decision<O>>
where
    O: Clone + std::fmt::Debug + Eq,
{
    actions
        .iter()
        .filter_map(|a| match a {
            Action::Deliver(d) => Some(d.clone()),
            _ => None,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_u8_is_an_op() {
        let op: Vec<u8> = vec![1, 2, 3];
        assert_eq!(op.digest(), Digest::of(&[1, 2, 3]));
        assert_eq!(SmrOp::wire_size(&op), 7);
    }

    #[test]
    fn message_wire_sizes_are_plausible() {
        let op: Vec<u8> = vec![0u8; 100];
        let small: SmrMessage<Vec<u8>> = SmrMessage::Prepare {
            view: 0,
            seq: 1,
            digest: Digest::ZERO,
        };
        let big = SmrMessage::PrePrepare {
            view: 0,
            seq: 1,
            op: op.clone(),
        };
        assert!(small.wire_size() < big.wire_size());
        let vc: SmrMessage<Vec<u8>> = SmrMessage::ViewChange {
            new_view: 1,
            prepared: vec![(1, op)],
        };
        assert!(vc.wire_size() > small.wire_size());
    }

    #[test]
    fn config_timeout_is_multiple_of_round() {
        let cfg = SmrConfig {
            round: Duration::from_millis(500),
            view_change_rounds: 6,
            ..SmrConfig::default()
        };
        assert_eq!(cfg.view_change_timeout().as_millis(), 3_000);
    }

    #[test]
    fn decisions_helper_filters_deliver_actions() {
        let actions: Vec<Action<Vec<u8>>> = vec![
            Action::ScheduleTick {
                at: Instant::from_micros(1),
            },
            Action::Deliver(Decision {
                seq: 0,
                proposer: NodeId::new(1),
                op: vec![9],
            }),
        ];
        let d = decisions(&actions);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].op, vec![9]);
    }
}
