//! Synchronous SMR built on Dolev–Strong authenticated Byzantine agreement.
//!
//! Time is divided into rounds of fixed duration. Rounds are grouped into
//! *slots* of `f + 2` rounds (`f = ⌊(g−1)/2⌋`). In the first round of a slot
//! every member that has pending operations broadcasts a signed batch to all
//! peers; during the following rounds members relay newly accepted values
//! with their own signature appended (the Dolev–Strong signature-chain rule);
//! at the end of the slot every correct member has accepted the same set of
//! batches and delivers them in a deterministic order (by proposer, then by
//! position in the batch).
//!
//! A sender that equivocates (gets two different batches accepted) is
//! detected — both values are accepted — and its batch for that slot is
//! discarded by every correct member, exactly like the classical protocol
//! delivers the default value for a faulty sender.
//!
//! The engine is passive: the host must call [`tick`](SyncSmr::tick) at the
//! times requested through [`Action::ScheduleTick`].

use crate::protocol::{Action, ByzantineMode, Decision, Replication, SmrConfig, SmrMessage, SmrOp};
use atum_crypto::{Digest, KeyRegistry, NodeSigner, SignatureChain};
use atum_types::{Composition, Instant, NodeId};
use std::collections::{BTreeMap, VecDeque};
use std::sync::Arc;

/// Reason codes carried in the third slot of `smr-reject` trace events
/// (kept in sync with the README's event schema table).
pub mod reject_reason {
    /// Sender or relayer is not a member of this vgroup.
    pub const NON_MEMBER: u64 = 1;
    /// The signature chain's payload digest does not match the batch.
    pub const DIGEST: u64 = 2;
    /// The signature chain itself fails verification.
    pub const CHAIN: u64 = 3;
    /// A signer on the chain is not a member.
    pub const SIGNER: u64 = 4;
    /// The slot is already finalized or too far in the past.
    pub const STALE: u64 = 5;
}

/// Per-slot, per-sender agreement state.
#[derive(Debug, Clone)]
struct SenderAgreement<O> {
    /// Accepted (batch, digest) values; more than one means the sender
    /// equivocated and its slot is discarded.
    accepted: Vec<(Vec<O>, Digest)>,
    /// Whether this node already relayed each accepted digest.
    relayed: Vec<Digest>,
}

impl<O> Default for SenderAgreement<O> {
    fn default() -> Self {
        SenderAgreement {
            accepted: Vec::new(),
            relayed: Vec::new(),
        }
    }
}

#[derive(Debug, Clone)]
struct SlotState<O> {
    // Ordered maps throughout the engine state: iteration order feeds
    // protocol behaviour (delivery, relay fan-out) and state fingerprints,
    // so it must be deterministic across processes (determinism lint).
    per_sender: BTreeMap<NodeId, SenderAgreement<O>>,
    finalized: bool,
}

impl<O> Default for SlotState<O> {
    fn default() -> Self {
        SlotState {
            per_sender: BTreeMap::new(),
            finalized: false,
        }
    }
}

/// The synchronous (Dolev–Strong) replication engine.
#[derive(Clone)]
pub struct SyncSmr<O: SmrOp> {
    me: NodeId,
    members: Composition,
    config: SmrConfig,
    registry: Arc<KeyRegistry>,
    signer: Option<NodeSigner>,
    start: Instant,
    /// Highest round index already processed (`None` before round 0).
    processed_round: Option<u64>,
    pending: VecDeque<O>,
    slots: BTreeMap<u64, SlotState<O>>,
    next_seq: u64,
    byzantine: ByzantineMode,
}

impl<O: SmrOp> std::fmt::Debug for SyncSmr<O> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Deliberately skips the key registry and signer: key material is
        // shared, immutable infrastructure, not replica state — and the
        // model checker hashes this Debug rendering to fingerprint states.
        f.debug_struct("SyncSmr")
            .field("me", &self.me)
            .field("members", &self.members)
            .field("start", &self.start)
            .field("processed_round", &self.processed_round)
            .field("pending", &self.pending)
            .field("slots", &self.slots)
            .field("next_seq", &self.next_seq)
            .field("byzantine", &self.byzantine)
            .finish()
    }
}

impl<O: SmrOp> SyncSmr<O> {
    /// Creates an engine for member `me` of `members`, with round boundaries
    /// measured from `start`.
    pub fn new(
        me: NodeId,
        members: Composition,
        config: SmrConfig,
        registry: Arc<KeyRegistry>,
        start: Instant,
    ) -> Self {
        assert!(members.contains(me), "engine owner must be a group member");
        let signer = registry.signer(me);
        SyncSmr {
            me,
            members,
            config,
            registry,
            signer,
            start,
            processed_round: None,
            pending: VecDeque::new(),
            slots: BTreeMap::new(),
            next_seq: 0,
            byzantine: ByzantineMode::Correct,
        }
    }

    /// Number of faults tolerated: ⌊(g−1)/2⌋.
    pub fn max_faults(&self) -> usize {
        self.members.len().saturating_sub(1) / 2
    }

    /// Rounds per slot: `f + 2` (one broadcast round, `f` relay rounds, one
    /// finalisation boundary).
    pub fn rounds_per_slot(&self) -> u64 {
        (self.max_faults() as u64) + 2
    }

    /// The slot a given round belongs to.
    fn slot_of_round(&self, round: u64) -> u64 {
        round / self.rounds_per_slot()
    }

    /// Round index at time `now` (None before the first boundary).
    fn round_at(&self, now: Instant) -> Option<u64> {
        if now < self.start {
            return None;
        }
        Some((now - self.start).as_micros() / self.config.round.as_micros().max(1))
    }

    /// Absolute time of the start of `round`.
    fn round_start(&self, round: u64) -> Instant {
        self.start + atum_types::Duration::from_micros(round * self.config.round.as_micros())
    }

    /// Digest signed by the Dolev–Strong chain for a batch.
    fn batch_digest(slot: u64, sender: NodeId, batch: &[O]) -> Digest {
        let mut acc = Digest::of_parts(&[
            b"sync-slot",
            &slot.to_be_bytes(),
            &sender.raw().to_be_bytes(),
        ]);
        for op in batch {
            acc = acc.combine(&op.digest());
        }
        acc
    }

    /// Number of operations waiting to be proposed.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    fn broadcast_own_batch(&mut self, slot: u64, actions: &mut Vec<Action<O>>) {
        if self.pending.is_empty() || self.byzantine != ByzantineMode::Correct {
            // Silent and equivocating replicas simply do not progress their
            // own proposals (an equivocating sender additionally sends
            // diverging partial batches, handled below).
            if self.byzantine == ByzantineMode::Equivocate && !self.pending.is_empty() {
                self.equivocate(slot, actions);
            }
            return;
        }
        let Some(signer) = self.signer.clone() else {
            return;
        };
        let take = self.pending.len().min(self.config.max_batch);
        let batch: Vec<O> = self.pending.drain(..take).collect();
        let digest = Self::batch_digest(slot, self.me, &batch);
        let chain = SignatureChain::new(digest, &signer);
        // Accept own value immediately.
        let slot_state = self.slots.entry(slot).or_default();
        let agreement = slot_state.per_sender.entry(self.me).or_default();
        agreement.accepted.push((batch.clone(), digest));
        agreement.relayed.push(digest);
        for peer in self.members.iter().filter(|&p| p != self.me) {
            actions.push(Action::Send {
                to: peer,
                msg: SmrMessage::SyncValue {
                    slot,
                    sender: self.me,
                    batch: batch.clone(),
                    chain: chain.clone(),
                },
            });
        }
    }

    /// Equivocation fault injection: send the first pending operation to one
    /// half of the group and a conflicting (empty) batch to the other half.
    /// Correct receivers end up accepting two different values for this
    /// sender and discard its slot, as Dolev–Strong prescribes.
    fn equivocate(&mut self, slot: u64, actions: &mut Vec<Action<O>>) {
        let Some(signer) = self.signer.clone() else {
            return;
        };
        let Some(op) = self.pending.front().cloned() else {
            return;
        };
        let batch_a = vec![op];
        let batch_b: Vec<O> = Vec::new();
        let chain_a = SignatureChain::new(Self::batch_digest(slot, self.me, &batch_a), &signer);
        let chain_b = SignatureChain::new(Self::batch_digest(slot, self.me, &batch_b), &signer);
        let half = self.members.len() / 2;
        for (i, peer) in self.members.iter().filter(|&p| p != self.me).enumerate() {
            let (batch, chain) = if i < half {
                (batch_a.clone(), chain_a.clone())
            } else {
                (batch_b.clone(), chain_b.clone())
            };
            actions.push(Action::Send {
                to: peer,
                msg: SmrMessage::SyncValue {
                    slot,
                    sender: self.me,
                    batch,
                    chain,
                },
            });
        }
    }

    fn finalize_slot(&mut self, slot: u64, actions: &mut Vec<Action<O>>) {
        let Some(state) = self.slots.get_mut(&slot) else {
            return;
        };
        if state.finalized {
            return;
        }
        state.finalized = true;
        // Deterministic delivery order: members in ascending id order.
        let members: Vec<NodeId> = self.members.iter().collect();
        let mut decisions = Vec::new();
        for sender in members {
            if let Some(agreement) = state.per_sender.get(&sender) {
                // Exactly one accepted value => honest (or consistently
                // behaving) sender; deliver. Zero or two+ => discard.
                if agreement.accepted.len() == 1 {
                    for op in &agreement.accepted[0].0 {
                        decisions.push(Decision {
                            seq: self.next_seq,
                            proposer: sender,
                            op: op.clone(),
                        });
                        self.next_seq += 1;
                    }
                }
            }
        }
        // Keep memory bounded: drop state of finalized slots older than the
        // previous one.
        self.slots.retain(|&s, st| s + 2 > slot || !st.finalized);
        actions.extend(decisions.into_iter().map(Action::Deliver));
    }

    fn process_round(&mut self, round: u64, actions: &mut Vec<Action<O>>) {
        let rps = self.rounds_per_slot();
        if round.is_multiple_of(rps) {
            let slot = self.slot_of_round(round);
            // Finalize the previous slot before starting a new one.
            if slot > 0 {
                self.finalize_slot(slot - 1, actions);
            }
            self.broadcast_own_batch(slot, actions);
        }
    }
}

impl<O: SmrOp> Replication<O> for SyncSmr<O> {
    fn propose(&mut self, op: O, now: Instant) -> Vec<Action<O>> {
        self.pending.push_back(op);
        // Ask the host to tick us at the next round boundary so the batch is
        // broadcast at the next slot start.
        let next_round = self.round_at(now).map_or(0, |r| r + 1);
        vec![Action::ScheduleTick {
            at: self.round_start(next_round),
        }]
    }

    fn handle(&mut self, from: NodeId, msg: SmrMessage<O>, now: Instant) -> Vec<Action<O>> {
        let mut actions = Vec::new();
        let SmrMessage::SyncValue {
            slot,
            sender,
            batch,
            chain,
        } = msg
        else {
            return actions; // Not a synchronous-engine message.
        };
        if self.byzantine == ByzantineMode::Silent {
            return actions;
        }
        // Validation: the sender must be a member, the chain must start with
        // the sender, every signer must be a distinct member, the relayer
        // (`from`) must be a member, and the chain must sign this batch.
        if !self.members.contains(sender) || !self.members.contains(from) {
            atum_obs::trace_event!(
                SmrReject,
                at = now.as_micros(),
                node = self.me.raw(),
                slots = [slot, from.raw(), reject_reason::NON_MEMBER],
                "[smr {}] reject slot {slot} from {from}: non-member",
                self.me
            );
            return actions;
        }
        let expected = Self::batch_digest(slot, sender, &batch);
        if *chain.payload() != expected {
            atum_obs::trace_event!(
                SmrReject,
                at = now.as_micros(),
                node = self.me.raw(),
                slots = [slot, from.raw(), reject_reason::DIGEST],
                "[smr {}] reject slot {slot} from {from}: digest",
                self.me
            );
            return actions;
        }
        if !chain.verify(&self.registry, Some(sender), true) {
            atum_obs::trace_event!(
                SmrReject,
                at = now.as_micros(),
                node = self.me.raw(),
                slots = [slot, from.raw(), reject_reason::CHAIN],
                "[smr {}] reject slot {slot} from {from}: chain",
                self.me
            );
            return actions;
        }
        if chain.signers().any(|s| !self.members.contains(s)) {
            atum_obs::trace_event!(
                SmrReject,
                at = now.as_micros(),
                node = self.me.raw(),
                slots = [slot, from.raw(), reject_reason::SIGNER],
                "[smr {}] reject slot {slot} from {from}: signer",
                self.me
            );
            return actions;
        }
        let current_round = self.round_at(now).unwrap_or(0);
        let current_slot = self.slot_of_round(current_round);
        // Ignore values for already-finalized slots.
        if self.slots.get(&slot).map(|s| s.finalized).unwrap_or(false) || slot + 1 < current_slot {
            atum_obs::trace_event!(
                SmrReject,
                at = now.as_micros(),
                node = self.me.raw(),
                slots = [slot, from.raw(), reject_reason::STALE],
                "[smr {}] reject slot {slot} from {from}: stale (current {current_slot})",
                self.me
            );
            return actions;
        }

        let me = self.me;
        let rps = self.rounds_per_slot();
        let finalize_at = self.round_start(slot * rps + rps);
        let last_relay_round = slot * rps + rps - 2;
        let slot_state = self.slots.entry(slot).or_default();
        let agreement = slot_state.per_sender.entry(sender).or_default();
        let digest = expected;
        let already_accepted = agreement.accepted.iter().any(|(_, d)| *d == digest);
        if already_accepted || agreement.accepted.len() >= 2 {
            return actions;
        }
        agreement.accepted.push((batch.clone(), digest));
        // Make sure the host wakes us up at this slot's finalization boundary
        // even if we never propose anything ourselves.
        actions.push(Action::ScheduleTick { at: finalize_at });

        // Relay with our signature appended, unless we already signed it or
        // the slot's relay window is over.
        if !chain.contains(me) && current_round <= last_relay_round {
            if let Some(signer) = self.signer.clone() {
                agreement.relayed.push(digest);
                let mut new_chain = chain.clone();
                new_chain.append(&signer);
                for peer in self.members.iter().filter(|&p| p != me && p != from) {
                    actions.push(Action::Send {
                        to: peer,
                        msg: SmrMessage::SyncValue {
                            slot,
                            sender,
                            batch: batch.clone(),
                            chain: new_chain.clone(),
                        },
                    });
                }
            }
        }
        actions
    }

    fn tick(&mut self, now: Instant) -> Vec<Action<O>> {
        let mut actions = Vec::new();
        let Some(target) = self.round_at(now) else {
            return vec![Action::ScheduleTick { at: self.start }];
        };
        let from = self.processed_round.map_or(0, |r| r + 1);
        for round in from..=target {
            self.process_round(round, &mut actions);
        }
        self.processed_round = Some(target);
        // Always ask to be woken at the next round boundary while there is
        // anything in flight.
        if !self.pending.is_empty() || self.slots.values().any(|s| !s.finalized) {
            actions.push(Action::ScheduleTick {
                at: self.round_start(target + 1),
            });
        }
        actions
    }

    fn members(&self) -> &Composition {
        &self.members
    }

    fn set_byzantine(&mut self, mode: ByzantineMode) {
        self.byzantine = mode;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit::LockstepCluster;
    use atum_types::SmrMode;

    #[test]
    fn max_faults_and_rounds_per_slot() {
        let mut registry = KeyRegistry::new();
        for i in 0..7 {
            registry.register(NodeId::new(i), 1);
        }
        let members: Composition = (0..7).map(NodeId::new).collect();
        let smr: SyncSmr<Vec<u8>> = SyncSmr::new(
            NodeId::new(0),
            members,
            SmrConfig::default(),
            registry.shared(),
            Instant::ZERO,
        );
        assert_eq!(smr.max_faults(), 3);
        assert_eq!(smr.rounds_per_slot(), 5);
    }

    #[test]
    #[should_panic(expected = "member")]
    fn owner_must_be_member() {
        let registry = KeyRegistry::new().shared();
        let members: Composition = (0..3).map(NodeId::new).collect();
        let _: SyncSmr<Vec<u8>> = SyncSmr::new(
            NodeId::new(9),
            members,
            SmrConfig::default(),
            registry,
            Instant::ZERO,
        );
    }

    #[test]
    fn all_correct_members_agree_on_single_proposal() {
        let mut cluster = LockstepCluster::new(5, SmrMode::Synchronous, SmrConfig::default(), 1);
        cluster.propose(NodeId::new(2), b"hello".to_vec());
        cluster.run_to_quiescence();
        cluster.assert_agreement();
        for n in 0..5 {
            let d = cluster.decided(NodeId::new(n));
            assert_eq!(d.len(), 1, "node {n} decided {d:?}");
            assert_eq!(d[0].op, b"hello".to_vec());
            assert_eq!(d[0].proposer, NodeId::new(2));
        }
    }

    #[test]
    fn concurrent_proposals_are_ordered_identically() {
        let mut cluster = LockstepCluster::new(7, SmrMode::Synchronous, SmrConfig::default(), 2);
        for i in 0..7u64 {
            cluster.propose(NodeId::new(i), format!("op-{i}").into_bytes());
        }
        cluster.run_to_quiescence();
        cluster.assert_agreement();
        let decided = cluster.decided(NodeId::new(0));
        assert_eq!(decided.len(), 7);
        // Deterministic order: by proposer id.
        let proposers: Vec<u64> = decided.iter().map(|d| d.proposer.raw()).collect();
        let mut sorted = proposers.clone();
        sorted.sort_unstable();
        assert_eq!(proposers, sorted);
    }

    #[test]
    fn silent_minority_does_not_block_agreement() {
        let mut cluster = LockstepCluster::new(7, SmrMode::Synchronous, SmrConfig::default(), 3);
        cluster.set_byzantine(NodeId::new(5), ByzantineMode::Silent);
        cluster.set_byzantine(NodeId::new(6), ByzantineMode::Silent);
        cluster.propose(NodeId::new(0), b"resilient".to_vec());
        cluster.run_to_quiescence();
        cluster.assert_agreement_among(&(0..5).map(NodeId::new).collect::<Vec<_>>());
        for n in 0..5 {
            assert_eq!(cluster.decided(NodeId::new(n)).len(), 1, "node {n}");
        }
    }

    #[test]
    fn equivocating_sender_is_discarded_but_correct_senders_deliver() {
        let mut cluster = LockstepCluster::new(5, SmrMode::Synchronous, SmrConfig::default(), 4);
        cluster.set_byzantine(NodeId::new(4), ByzantineMode::Equivocate);
        cluster.propose(NodeId::new(4), b"evil".to_vec());
        cluster.propose(NodeId::new(1), b"good".to_vec());
        cluster.run_to_quiescence();
        cluster.assert_agreement_among(&(0..4).map(NodeId::new).collect::<Vec<_>>());
        let d = cluster.decided(NodeId::new(0));
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].op, b"good".to_vec());
    }

    #[test]
    fn multiple_slots_deliver_in_order() {
        let mut cluster = LockstepCluster::new(4, SmrMode::Synchronous, SmrConfig::default(), 5);
        cluster.propose(NodeId::new(0), b"first".to_vec());
        cluster.run_to_quiescence();
        cluster.propose(NodeId::new(1), b"second".to_vec());
        cluster.run_to_quiescence();
        cluster.assert_agreement();
        let d = cluster.decided(NodeId::new(3));
        assert_eq!(d.len(), 2);
        assert_eq!(d[0].op, b"first".to_vec());
        assert_eq!(d[1].op, b"second".to_vec());
        assert!(d[0].seq < d[1].seq);
    }

    #[test]
    fn batching_respects_max_batch() {
        let config = SmrConfig {
            max_batch: 3,
            ..SmrConfig::default()
        };
        let mut cluster = LockstepCluster::new(4, SmrMode::Synchronous, config, 6);
        for i in 0..5u8 {
            cluster.propose(NodeId::new(0), vec![i]);
        }
        cluster.run_to_quiescence();
        cluster.assert_agreement();
        // All five ops eventually decided (over two slots).
        assert_eq!(cluster.decided(NodeId::new(1)).len(), 5);
    }

    #[test]
    fn forged_chain_is_rejected() {
        // A message whose chain was not produced by the claimed sender must
        // not be accepted.
        let mut registry = KeyRegistry::new();
        for i in 0..4 {
            registry.register(NodeId::new(i), 7);
        }
        let registry = registry.shared();
        let members: Composition = (0..4).map(NodeId::new).collect();
        let mut honest: SyncSmr<Vec<u8>> = SyncSmr::new(
            NodeId::new(0),
            members.clone(),
            SmrConfig::default(),
            registry.clone(),
            Instant::ZERO,
        );
        // Node 3 forges a value claiming to be from node 2 but signs with its
        // own key as the first link.
        let batch = vec![b"forged".to_vec()];
        let digest = SyncSmr::<Vec<u8>>::batch_digest(0, NodeId::new(2), &batch);
        let forger = registry.signer(NodeId::new(3)).unwrap();
        let chain = SignatureChain::new(digest, &forger);
        let actions = honest.handle(
            NodeId::new(3),
            SmrMessage::SyncValue {
                slot: 0,
                sender: NodeId::new(2),
                batch,
                chain,
            },
            Instant::from_micros(10),
        );
        assert!(actions.is_empty());
        // Nothing was accepted for sender 2.
        assert!(honest
            .slots
            .get(&0)
            .and_then(|s| s.per_sender.get(&NodeId::new(2)))
            .is_none());
    }
}
