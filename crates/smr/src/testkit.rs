//! A lockstep test harness for running SMR engines in-memory.
//!
//! The harness drives a group of [`Engine`]s over an idealised network with a
//! small fixed latency, ticking every engine on a regular grid. It is used by
//! the unit tests of both engines, by the integration tests, and by the
//! Criterion benchmarks (`smr_agreement`). It is intentionally simpler than
//! `atum-simnet`: no bandwidth modelling, no loss — those aspects are covered
//! by the full-system simulations.

use crate::protocol::{Action, ByzantineMode, Decision, Replication, SmrConfig, SmrMessage};
use crate::Engine;
use atum_crypto::KeyRegistry;
use atum_types::{Composition, Duration, Instant, NodeId, SmrMode};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::collections::BTreeMap;

/// Test operation type: raw bytes.
pub type TestOp = Vec<u8>;

struct InFlight {
    deliver_at: Instant,
    from: NodeId,
    to: NodeId,
    msg: SmrMessage<TestOp>,
}

/// An in-memory cluster of SMR replicas advancing in lockstep.
pub struct LockstepCluster {
    engines: BTreeMap<NodeId, Engine<TestOp>>,
    decided: BTreeMap<NodeId, Vec<Decision<TestOp>>>,
    inflight: Vec<InFlight>,
    now: Instant,
    tick_step: Duration,
    config: SmrConfig,
    rng: ChaCha8Rng,
    /// Simulated one-way latency bounds for messages.
    latency: (Duration, Duration),
    last_activity: Instant,
}

// Manual: summarize by counters, skip the RNG stream and message bodies.
impl std::fmt::Debug for LockstepCluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LockstepCluster")
            .field("now", &self.now)
            .field("engines", &self.engines.len())
            .field("inflight", &self.inflight.len())
            .field("config", &self.config)
            .finish_non_exhaustive()
    }
}

impl LockstepCluster {
    /// Creates a cluster of `n` replicas running the engine selected by
    /// `mode`.
    pub fn new(n: usize, mode: SmrMode, config: SmrConfig, seed: u64) -> Self {
        assert!(n >= 1);
        let mut registry = KeyRegistry::new();
        for i in 0..n as u64 {
            registry.register(NodeId::new(i), seed);
        }
        let registry = registry.shared();
        let members: Composition = (0..n as u64).map(NodeId::new).collect();
        let mut engines = BTreeMap::new();
        let mut decided = BTreeMap::new();
        for i in 0..n as u64 {
            let id = NodeId::new(i);
            engines.insert(
                id,
                Engine::new(
                    mode,
                    id,
                    members.clone(),
                    config.clone(),
                    registry.clone(),
                    Instant::ZERO,
                ),
            );
            decided.insert(id, Vec::new());
        }
        let tick_step = Duration::from_micros(config.round.as_micros().max(2) / 2);
        LockstepCluster {
            engines,
            decided,
            inflight: Vec::new(),
            now: Instant::ZERO,
            tick_step,
            config,
            rng: ChaCha8Rng::seed_from_u64(seed),
            latency: (Duration::from_millis(5), Duration::from_millis(25)),
            last_activity: Instant::ZERO,
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> Instant {
        self.now
    }

    /// Replica identifiers, in order.
    pub fn replica_ids(&self) -> Vec<NodeId> {
        self.engines.keys().copied().collect()
    }

    /// Marks a replica as Byzantine with the given behaviour.
    pub fn set_byzantine(&mut self, node: NodeId, mode: ByzantineMode) {
        if let Some(engine) = self.engines.get_mut(&node) {
            engine.set_byzantine(mode);
        }
    }

    /// Submits an operation at replica `node`.
    pub fn propose(&mut self, node: NodeId, op: TestOp) {
        let now = self.now;
        let actions = self
            .engines
            .get_mut(&node)
            .expect("unknown replica")
            .propose(op, now);
        self.apply_actions(node, actions);
    }

    /// The operations delivered so far at `node`, in delivery order.
    pub fn decided(&self, node: NodeId) -> &[Decision<TestOp>] {
        self.decided.get(&node).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// Total messages currently in flight (test introspection).
    pub fn inflight_len(&self) -> usize {
        self.inflight.len()
    }

    /// Returns the current view of an asynchronous replica.
    ///
    /// # Panics
    ///
    /// Panics if the replica runs the synchronous engine.
    pub fn async_view(&self, node: NodeId) -> u64 {
        match self.engines.get(&node) {
            Some(Engine::Async(e)) => e.view(),
            _ => panic!("replica {node} is not running the asynchronous engine"),
        }
    }

    fn sample_latency(&mut self) -> Duration {
        let lo = self.latency.0.as_micros();
        let hi = self.latency.1.as_micros().max(lo + 1);
        Duration::from_micros(self.rng.gen_range(lo..hi))
    }

    fn apply_actions(&mut self, node: NodeId, actions: Vec<Action<TestOp>>) {
        for action in actions {
            match action {
                Action::Send { to, msg } => {
                    let latency = self.sample_latency();
                    self.inflight.push(InFlight {
                        deliver_at: self.now + latency,
                        from: node,
                        to,
                        msg,
                    });
                    self.last_activity = self.now;
                }
                Action::Deliver(decision) => {
                    self.decided
                        .get_mut(&node)
                        .expect("known node")
                        .push(decision);
                    self.last_activity = self.now;
                }
                Action::ScheduleTick { .. } => {
                    // The harness ticks every replica on a fixed grid, so
                    // explicit tick requests are satisfied automatically.
                }
            }
        }
    }

    /// Advances simulated time by one tick step, delivering due messages and
    /// ticking every replica.
    pub fn step(&mut self) {
        self.now += self.tick_step;
        // Deliver all messages due by now, in deterministic order.
        let mut due: Vec<InFlight> = Vec::new();
        let mut remaining: Vec<InFlight> = Vec::new();
        for m in self.inflight.drain(..) {
            if m.deliver_at <= self.now {
                due.push(m);
            } else {
                remaining.push(m);
            }
        }
        self.inflight = remaining;
        due.sort_by_key(|m| (m.deliver_at, m.from, m.to));
        for m in due {
            let now = self.now;
            if let Some(engine) = self.engines.get_mut(&m.to) {
                let actions = engine.handle(m.from, m.msg, now);
                self.apply_actions(m.to, actions);
            }
        }
        // Tick every replica.
        let ids: Vec<NodeId> = self.engines.keys().copied().collect();
        for id in ids {
            let now = self.now;
            let actions = self.engines.get_mut(&id).expect("known").tick(now);
            self.apply_actions(id, actions);
        }
    }

    /// Runs for the given number of simulated seconds.
    pub fn run_for_secs(&mut self, secs: u64) {
        let target = self.now + Duration::from_secs(secs);
        while self.now < target {
            self.step();
        }
    }

    /// Runs until no messages are in flight and no activity (send or
    /// delivery) has occurred for a grace period long enough to cover a full
    /// synchronous slot or an asynchronous view-change timeout, capped at 20
    /// simulated minutes.
    pub fn run_to_quiescence(&mut self) {
        let n = self.engines.len();
        let f = n.saturating_sub(1) / 2;
        let grace = self
            .config
            .round
            .saturating_mul((2 * (f as u64 + 3)).max(self.config.view_change_rounds as u64 * 2));
        let cap = self.now + Duration::from_secs(1200);
        loop {
            self.step();
            let quiet =
                self.inflight.is_empty() && self.now.saturating_since(self.last_activity) > grace;
            if quiet || self.now >= cap {
                break;
            }
        }
    }

    /// Asserts that every replica delivered a consistent prefix (same
    /// operations in the same order).
    pub fn assert_agreement(&self) {
        let ids = self.replica_ids();
        self.assert_agreement_among(&ids);
    }

    /// Asserts prefix-consistency of delivery order among the given replicas.
    pub fn assert_agreement_among(&self, nodes: &[NodeId]) {
        for (i, a) in nodes.iter().enumerate() {
            for b in nodes.iter().skip(i + 1) {
                let da = self.decided(*a);
                let db = self.decided(*b);
                let common = da.len().min(db.len());
                for k in 0..common {
                    assert_eq!(
                        da[k].op, db[k].op,
                        "divergence between {a} and {b} at position {k}: {:?} vs {:?}",
                        da[k], db[k]
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cluster_construction() {
        let c = LockstepCluster::new(4, SmrMode::Synchronous, SmrConfig::default(), 1);
        assert_eq!(c.replica_ids().len(), 4);
        assert_eq!(c.now(), Instant::ZERO);
        assert_eq!(c.inflight_len(), 0);
        assert!(c.decided(NodeId::new(0)).is_empty());
    }

    #[test]
    fn agreement_assertion_passes_trivially_when_nothing_decided() {
        let c = LockstepCluster::new(3, SmrMode::Asynchronous, SmrConfig::default(), 2);
        c.assert_agreement();
    }

    #[test]
    fn step_advances_time() {
        let mut c = LockstepCluster::new(3, SmrMode::Synchronous, SmrConfig::default(), 3);
        let t0 = c.now();
        c.step();
        assert!(c.now() > t0);
    }

    #[test]
    fn deterministic_given_same_seed() {
        fn run(seed: u64) -> Vec<u64> {
            let mut c = LockstepCluster::new(4, SmrMode::Asynchronous, SmrConfig::default(), seed);
            c.propose(NodeId::new(1), b"x".to_vec());
            c.propose(NodeId::new(2), b"y".to_vec());
            c.run_to_quiescence();
            c.decided(NodeId::new(0)).iter().map(|d| d.seq).collect()
        }
        assert_eq!(run(11), run(11));
    }
}
