//! Vgroup membership ([`Composition`]) and the quorum arithmetic used by the
//! group layer.

use crate::config::SmrMode;
use crate::id::NodeId;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// The membership of a volatile group: a sorted, duplicate-free set of node
/// identifiers.
///
/// Compositions are small (logarithmic in system size) but travel inside
/// every group-message envelope, neighbour-table entry and random-walk
/// reply, so the member list lives behind an `Arc<[NodeId]>`: cloning a
/// composition is a reference-count bump, and the fan-out paths that send
/// one envelope to every member of a destination vgroup share a single
/// allocation across all copies. Mutation (`insert` / `remove` / `extend`)
/// is copy-on-write — it builds a fresh member slice and leaves every
/// previously handed-out clone untouched.
///
/// # Example
///
/// ```
/// use atum_types::{Composition, NodeId, SmrMode};
///
/// let comp: Composition = [3u64, 1, 2, 3].iter().map(|&r| NodeId::new(r)).collect();
/// assert_eq!(comp.len(), 3); // duplicates removed
/// assert_eq!(comp.majority(), 2);
/// assert_eq!(comp.max_faults(SmrMode::Asynchronous), 0);
///
/// // Clones share storage; mutation copies instead of aliasing.
/// let before = comp.clone();
/// let mut grown = comp.clone();
/// grown.insert(NodeId::new(9));
/// assert_eq!(before.len(), 3);
/// assert_eq!(grown.len(), 4);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize, PartialOrd, Ord)]
pub struct Composition {
    members: Arc<[NodeId]>,
}

impl Composition {
    /// Creates an empty composition.
    pub fn new() -> Self {
        Composition {
            members: Arc::from(Vec::new()),
        }
    }

    /// Creates a composition from an iterator of members, sorting and
    /// deduplicating them.
    pub fn from_members<I: IntoIterator<Item = NodeId>>(members: I) -> Self {
        let mut v: Vec<NodeId> = members.into_iter().collect();
        v.sort_unstable();
        v.dedup();
        Composition {
            members: Arc::from(v),
        }
    }

    /// Creates a composition containing a single node.
    pub fn singleton(node: NodeId) -> Self {
        Composition {
            members: Arc::from(vec![node]),
        }
    }

    /// `true` when `self` and `other` share the same member-slice
    /// allocation (test hook for the copy-on-write contract).
    pub fn shares_storage_with(&self, other: &Composition) -> bool {
        Arc::ptr_eq(&self.members, &other.members)
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// `true` when the composition has no members.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// `true` when `node` is a member.
    pub fn contains(&self, node: NodeId) -> bool {
        self.members.binary_search(&node).is_ok()
    }

    /// Adds a member, keeping the set sorted. Returns `false` if it was
    /// already present. Copy-on-write: clones sharing the old slice are
    /// unaffected.
    pub fn insert(&mut self, node: NodeId) -> bool {
        match self.members.binary_search(&node) {
            Ok(_) => false,
            Err(pos) => {
                let mut v = Vec::with_capacity(self.members.len() + 1);
                v.extend_from_slice(&self.members[..pos]);
                v.push(node);
                v.extend_from_slice(&self.members[pos..]);
                self.members = Arc::from(v);
                true
            }
        }
    }

    /// Removes a member. Returns `false` if it was not present.
    /// Copy-on-write: clones sharing the old slice are unaffected.
    pub fn remove(&mut self, node: NodeId) -> bool {
        match self.members.binary_search(&node) {
            Ok(pos) => {
                let mut v = Vec::with_capacity(self.members.len() - 1);
                v.extend_from_slice(&self.members[..pos]);
                v.extend_from_slice(&self.members[pos + 1..]);
                self.members = Arc::from(v);
                true
            }
            Err(_) => false,
        }
    }

    /// Iterates over the members in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.members.iter().copied()
    }

    /// Members as a slice (sorted ascending).
    pub fn as_slice(&self) -> &[NodeId] {
        &self.members
    }

    /// The smallest number of members that constitutes a strict majority
    /// (⌊g/2⌋ + 1). Group messages are accepted once this many distinct
    /// senders from the source vgroup delivered the same payload.
    pub fn majority(&self) -> usize {
        self.members.len() / 2 + 1
    }

    /// Maximum number of faults the vgroup tolerates under the given SMR
    /// mode: ⌊(g−1)/2⌋ synchronously, ⌊(g−1)/3⌋ asynchronously.
    pub fn max_faults(&self, mode: SmrMode) -> usize {
        mode.max_faults(self.members.len())
    }

    /// Quorum size used by the asynchronous SMR protocol: `2f + 1` where
    /// `f = ⌊(g−1)/3⌋`.
    pub fn async_quorum(&self) -> usize {
        2 * self.max_faults(SmrMode::Asynchronous) + 1
    }

    /// Returns `true` when a set of `fault_count` faulty members leaves the
    /// vgroup robust under the given SMR mode.
    pub fn is_robust_with(&self, fault_count: usize, mode: SmrMode) -> bool {
        fault_count <= self.max_faults(mode)
    }

    /// Returns the member at `index` (by sorted position), if any.
    pub fn member_at(&self, index: usize) -> Option<NodeId> {
        self.members.get(index).copied()
    }

    /// Picks the member at position `selector % len`, used for pseudo-random
    /// member selection with an external random value.
    pub fn pick(&self, selector: u64) -> Option<NodeId> {
        if self.members.is_empty() {
            None
        } else {
            Some(self.members[(selector % self.members.len() as u64) as usize])
        }
    }

    /// Splits the composition into two halves using an external shuffled
    /// order given by `order` (a permutation of `0..len`). The first half
    /// (size ⌈len/2⌉) stays, the second half forms the new vgroup.
    ///
    /// # Panics
    ///
    /// Panics if `order` is not a permutation of `0..self.len()`.
    pub fn split_by_order(&self, order: &[usize]) -> (Composition, Composition) {
        assert_eq!(
            order.len(),
            self.members.len(),
            "order must cover all members"
        );
        let mut seen = vec![false; order.len()];
        for &i in order {
            assert!(i < order.len() && !seen[i], "order must be a permutation");
            seen[i] = true;
        }
        let keep = order.len().div_ceil(2);
        let first = order[..keep].iter().map(|&i| self.members[i]);
        let second = order[keep..].iter().map(|&i| self.members[i]);
        (
            Composition::from_members(first),
            Composition::from_members(second),
        )
    }

    /// Returns the union of two compositions (used on merge).
    pub fn union(&self, other: &Composition) -> Composition {
        Composition::from_members(self.iter().chain(other.iter()))
    }

    /// Returns the intersection of two compositions.
    pub fn intersection(&self, other: &Composition) -> Composition {
        Composition::from_members(self.iter().filter(|n| other.contains(*n)))
    }

    /// Returns members present in `self` but not in `other`.
    pub fn difference(&self, other: &Composition) -> Composition {
        Composition::from_members(self.iter().filter(|n| !other.contains(*n)))
    }
}

impl Default for Composition {
    fn default() -> Self {
        Composition::new()
    }
}

impl FromIterator<NodeId> for Composition {
    fn from_iter<I: IntoIterator<Item = NodeId>>(iter: I) -> Self {
        Composition::from_members(iter)
    }
}

impl Extend<NodeId> for Composition {
    fn extend<I: IntoIterator<Item = NodeId>>(&mut self, iter: I) {
        // One copy-on-write rebuild for the whole batch, not one per item.
        *self = Composition::from_members(self.iter().chain(iter));
    }
}

impl<'a> IntoIterator for &'a Composition {
    type Item = NodeId;
    type IntoIter = std::iter::Copied<std::slice::Iter<'a, NodeId>>;

    fn into_iter(self) -> Self::IntoIter {
        self.members.iter().copied()
    }
}

impl fmt::Display for Composition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, m) in self.members.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{m}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn comp(ids: &[u64]) -> Composition {
        ids.iter().map(|&r| NodeId::new(r)).collect()
    }

    #[test]
    fn from_members_sorts_and_dedups() {
        let c = comp(&[5, 1, 3, 1, 5]);
        assert_eq!(c.len(), 3);
        let v: Vec<u64> = c.iter().map(|n| n.raw()).collect();
        assert_eq!(v, vec![1, 3, 5]);
    }

    #[test]
    fn insert_remove_contains() {
        let mut c = Composition::new();
        assert!(c.is_empty());
        assert!(c.insert(NodeId::new(2)));
        assert!(c.insert(NodeId::new(1)));
        assert!(!c.insert(NodeId::new(2)));
        assert!(c.contains(NodeId::new(1)));
        assert!(c.remove(NodeId::new(1)));
        assert!(!c.remove(NodeId::new(1)));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn majority_values() {
        assert_eq!(comp(&[1]).majority(), 1);
        assert_eq!(comp(&[1, 2]).majority(), 2);
        assert_eq!(comp(&[1, 2, 3]).majority(), 2);
        assert_eq!(comp(&[1, 2, 3, 4]).majority(), 3);
        assert_eq!(comp(&[1, 2, 3, 4, 5, 6, 7]).majority(), 4);
    }

    #[test]
    fn fault_bounds_match_paper() {
        // Paper §3.1: sync tolerates ⌊(g−1)/2⌋, async ⌊(g−1)/3⌋.
        let c4 = comp(&[1, 2, 3, 4]);
        assert_eq!(c4.max_faults(SmrMode::Synchronous), 1);
        assert_eq!(c4.max_faults(SmrMode::Asynchronous), 1);
        let c20: Composition = (0..20).map(NodeId::new).collect();
        assert_eq!(c20.max_faults(SmrMode::Synchronous), 9);
        assert_eq!(c20.max_faults(SmrMode::Asynchronous), 6);
        assert_eq!(c20.async_quorum(), 13);
    }

    #[test]
    fn robustness_check() {
        let c7 = comp(&[1, 2, 3, 4, 5, 6, 7]);
        assert!(c7.is_robust_with(3, SmrMode::Synchronous));
        assert!(!c7.is_robust_with(4, SmrMode::Synchronous));
        assert!(c7.is_robust_with(2, SmrMode::Asynchronous));
        assert!(!c7.is_robust_with(3, SmrMode::Asynchronous));
    }

    #[test]
    fn empty_composition_tolerates_nothing() {
        let c = Composition::new();
        assert_eq!(c.max_faults(SmrMode::Synchronous), 0);
        assert_eq!(c.max_faults(SmrMode::Asynchronous), 0);
        assert_eq!(c.pick(17), None);
    }

    #[test]
    fn pick_wraps_around() {
        let c = comp(&[10, 20, 30]);
        assert_eq!(c.pick(0).unwrap().raw(), 10);
        assert_eq!(c.pick(4).unwrap().raw(), 20);
        assert_eq!(c.pick(5).unwrap().raw(), 30);
    }

    #[test]
    fn split_by_order_partitions_members() {
        let c = comp(&[1, 2, 3, 4, 5]);
        let (a, b) = c.split_by_order(&[4, 0, 2, 1, 3]);
        assert_eq!(a.len(), 3);
        assert_eq!(b.len(), 2);
        assert_eq!(a.union(&b), c);
        assert!(a.intersection(&b).is_empty());
    }

    #[test]
    #[should_panic(expected = "permutation")]
    fn split_by_order_rejects_non_permutation() {
        comp(&[1, 2, 3]).split_by_order(&[0, 0, 1]);
    }

    #[test]
    fn clones_share_storage_until_mutation() {
        let a = comp(&[1, 2, 3]);
        let b = a.clone();
        assert!(a.shares_storage_with(&b));

        // Copy-on-write: mutating one side leaves the other untouched and
        // un-aliased.
        let mut c = a.clone();
        assert!(c.insert(NodeId::new(9)));
        assert!(!c.shares_storage_with(&a));
        assert_eq!(a.len(), 3);
        assert_eq!(c.len(), 4);

        let mut d = a.clone();
        assert!(d.remove(NodeId::new(2)));
        assert_eq!(a.len(), 3);
        assert_eq!(d.len(), 2);
        assert!(a.contains(NodeId::new(2)));

        // No-op mutations keep the shared allocation.
        let mut e = a.clone();
        assert!(!e.insert(NodeId::new(1)));
        assert!(!e.remove(NodeId::new(99)));
        assert!(e.shares_storage_with(&a));
    }

    #[test]
    fn extend_rebuilds_once_and_dedups() {
        let mut c = comp(&[1, 3]);
        c.extend([2, 3, 4].iter().map(|&i| NodeId::new(i)));
        assert_eq!(c, comp(&[1, 2, 3, 4]));
    }

    #[test]
    fn set_operations() {
        let a = comp(&[1, 2, 3]);
        let b = comp(&[3, 4]);
        assert_eq!(a.union(&b), comp(&[1, 2, 3, 4]));
        assert_eq!(a.intersection(&b), comp(&[3]));
        assert_eq!(a.difference(&b), comp(&[1, 2]));
        assert_eq!(b.difference(&a), comp(&[4]));
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(comp(&[1, 2]).to_string(), "{n1,n2}");
    }
}
