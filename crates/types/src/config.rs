//! System parameters (Table 1 of the paper) and operational configuration.

use crate::error::{AtumError, Result};
use crate::time::Duration;
use serde::{Deserialize, Serialize};

/// Which state-machine-replication engine runs inside every vgroup.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum SmrMode {
    /// Round-based Dolev–Strong-style authenticated agreement; tolerates
    /// ⌊(g−1)/2⌋ faults per vgroup. Suited to highly redundant (datacenter)
    /// networks where a round bound is realistic.
    #[default]
    Synchronous,
    /// PBFT-style eventually-synchronous ordering; tolerates ⌊(g−1)/3⌋ faults
    /// per vgroup but needs no round bound for safety.
    Asynchronous,
}

impl SmrMode {
    /// The number of Byzantine faults a group of `group_size` members
    /// tolerates under this engine: `⌊(g−1)/2⌋` synchronous, `⌊(g−1)/3⌋`
    /// asynchronous. The single source of the fault-bound formula — quorum
    /// and corroboration thresholds everywhere must derive from it.
    pub fn max_faults(self, group_size: usize) -> usize {
        let g = group_size.max(1);
        match self {
            SmrMode::Synchronous => (g - 1) / 2,
            SmrMode::Asynchronous => (g - 1) / 3,
        }
    }
}

/// How the default `forward` callback spreads a broadcast across the H-graph
/// (§3.3.4): applications can trade latency against throughput.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum GossipPolicy {
    /// Forward along every cycle (flooding): lowest latency, highest cost.
    #[default]
    Flood,
    /// Forward along a fixed number of cycles (1 = "Single", 2 = "Double" in
    /// the AStream evaluation).
    Cycles(u8),
    /// Forward to each neighbour independently with the given probability
    /// (classic gossip behaviour); the deterministic cycle 0 is always used
    /// so delivery stays guaranteed.
    Random {
        /// Forwarding probability in percent (0–100).
        percent: u8,
    },
}

/// The system parameters of Table 1 plus operational knobs.
///
/// `hc`, `rwl`, `gmin`, `gmax` and `k` are exactly the parameters the paper
/// lists; the remaining fields configure heartbeats, round durations and the
/// AShare replication degree, which the paper fixes per experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Params {
    /// Number of Hamiltonian cycles in the H-graph (`hc`, typically 2–12).
    pub hc: u8,
    /// Random-walk length (`rwl`, typically 4–15).
    pub rwl: u8,
    /// Minimum vgroup size before a merge is triggered (`gmin`).
    pub gmin: usize,
    /// Maximum vgroup size before a split is triggered (`gmax`).
    pub gmax: usize,
    /// Robustness parameter `k` in `g = k·log N` (documentation/analysis
    /// only; `gmin`/`gmax` are what the implementation enforces).
    pub k: u8,
    /// SMR engine used inside vgroups.
    pub smr: SmrMode,
    /// Duration of one synchronous round (1–1.5 s in the paper's
    /// experiments). Ignored by the asynchronous engine except as a
    /// view-change timeout baseline.
    pub round: Duration,
    /// Heartbeat period (§5.1 uses coarse heartbeats, e.g. one per minute).
    pub heartbeat_period: Duration,
    /// Number of consecutive missed heartbeats after which a vgroup agrees
    /// to evict a silent member.
    pub eviction_threshold: u32,
    /// Default gossip policy for the `forward` callback.
    pub gossip: GossipPolicy,
    /// AShare replication target ρ (replicas per file).
    pub rho: usize,
    /// Number of chunks a file is divided into for AShare transfers.
    pub chunks_per_file: usize,
    /// Overlay link self-repair: members periodically probe their cycle
    /// neighbours for link bidirectionality and launch re-insertion walks
    /// when a direction stays unanswered. Disabling this reverts to the
    /// pre-repair protocol where splits/merges racing admission churn can
    /// leave one-directional links or orphaned vgroups — kept as a knob so
    /// the model checker can demonstrate the failure the repair removes.
    pub link_repair: bool,
    /// Broadcast self-repair: members piggyback a digest of recently seen
    /// broadcasts on their periodic composition announces; a vgroup peer
    /// that missed one (a dropped gossip copy has no other retransmit)
    /// pulls it, and holders re-gossip it to the whole vgroup so the
    /// quorum acceptance path re-assembles at the holed member. Bounded:
    /// one re-gossip per broadcast per announce period per peer.
    pub broadcast_repair: bool,
}

impl Default for Params {
    fn default() -> Self {
        Params {
            hc: 5,
            rwl: 10,
            gmin: 7,
            gmax: 14,
            k: 4,
            smr: SmrMode::Synchronous,
            round: Duration::from_millis(1_000),
            heartbeat_period: Duration::from_secs(60),
            eviction_threshold: 3,
            gossip: GossipPolicy::Flood,
            rho: 8,
            chunks_per_file: 10,
            link_repair: true,
            broadcast_repair: true,
        }
    }
}

impl Params {
    /// Validates the parameter combination, returning an error describing the
    /// first violated constraint.
    ///
    /// # Errors
    ///
    /// Returns [`AtumError::InvalidConfig`] when any of the Table 1 ranges or
    /// internal consistency constraints (`gmin ≤ gmax`, non-zero sizes, ...)
    /// are violated.
    pub fn validate(&self) -> Result<()> {
        if self.hc == 0 {
            return Err(AtumError::invalid_config("hc must be at least 1"));
        }
        if self.rwl == 0 {
            return Err(AtumError::invalid_config("rwl must be at least 1"));
        }
        if self.gmin == 0 {
            return Err(AtumError::invalid_config("gmin must be at least 1"));
        }
        if self.gmin > self.gmax {
            return Err(AtumError::invalid_config("gmin must not exceed gmax"));
        }
        if self.gmax < 4 {
            return Err(AtumError::invalid_config(
                "gmax below 4 cannot mask any Byzantine fault",
            ));
        }
        if self.round == Duration::ZERO {
            return Err(AtumError::invalid_config("round duration must be non-zero"));
        }
        if self.heartbeat_period == Duration::ZERO {
            return Err(AtumError::invalid_config(
                "heartbeat period must be non-zero",
            ));
        }
        if self.eviction_threshold == 0 {
            return Err(AtumError::invalid_config(
                "eviction threshold must be at least 1",
            ));
        }
        if self.rho == 0 {
            return Err(AtumError::invalid_config("rho must be at least 1"));
        }
        if self.chunks_per_file == 0 {
            return Err(AtumError::invalid_config(
                "chunks_per_file must be at least 1",
            ));
        }
        if let GossipPolicy::Cycles(c) = self.gossip {
            if c == 0 || c > self.hc {
                return Err(AtumError::invalid_config(
                    "gossip cycle count must be within 1..=hc",
                ));
            }
        }
        if let GossipPolicy::Random { percent } = self.gossip {
            if percent > 100 {
                return Err(AtumError::invalid_config(
                    "gossip probability must be at most 100 percent",
                ));
            }
        }
        Ok(())
    }

    /// The expected vgroup size `g = k·log2(n)` for an expected system size
    /// `n` (paper §3.1). Clamped to at least `gmin`.
    pub fn expected_group_size(&self, expected_system_size: usize) -> usize {
        let logn = (expected_system_size.max(2) as f64).log2();
        ((self.k as f64 * logn).round() as usize).max(self.gmin)
    }

    /// Derives `gmin`/`gmax` from an expected system size, following the
    /// paper's convention `gmin = 0.5·gmax`, `gmax ≈ 2·k·log2(n)/1.5`.
    pub fn with_expected_size(mut self, expected_system_size: usize) -> Self {
        let g = self.expected_group_size(expected_system_size);
        self.gmax = (g * 4 / 3).max(6);
        self.gmin = (self.gmax / 2).max(3);
        self
    }

    /// Builder-style setter for the SMR mode.
    pub fn with_smr(mut self, mode: SmrMode) -> Self {
        self.smr = mode;
        self
    }

    /// Builder-style setter for the gossip policy.
    pub fn with_gossip(mut self, policy: GossipPolicy) -> Self {
        self.gossip = policy;
        self
    }

    /// Builder-style setter for the overlay parameters.
    pub fn with_overlay(mut self, hc: u8, rwl: u8) -> Self {
        self.hc = hc;
        self.rwl = rwl;
        self
    }

    /// Builder-style setter for the vgroup size bounds.
    pub fn with_group_bounds(mut self, gmin: usize, gmax: usize) -> Self {
        self.gmin = gmin;
        self.gmax = gmax;
        self
    }

    /// Builder-style setter for the synchronous round duration.
    pub fn with_round(mut self, round: Duration) -> Self {
        self.round = round;
        self
    }

    /// Builder-style setter for overlay link self-repair (bidirectionality
    /// probing + orphan re-insertion walks). On by default; turning it off
    /// reproduces the pre-repair link-surgery fragility for the model
    /// checker.
    pub fn with_link_repair(mut self, enabled: bool) -> Self {
        self.link_repair = enabled;
        self
    }

    /// Builder-style setter for broadcast self-repair (announce-piggybacked
    /// anti-entropy over recently seen broadcasts). On by default; the
    /// model checker turns it off because its eventual-delivery properties
    /// hold without the accelerator and the settle phase stays cheap.
    pub fn with_broadcast_repair(mut self, enabled: bool) -> Self {
        self.broadcast_repair = enabled;
        self
    }

    /// Builder-style setter for failure detection: how often members
    /// heartbeat each other, and after how many silent periods a member is
    /// accused for eviction.
    pub fn with_failure_detection(
        mut self,
        heartbeat_period: Duration,
        eviction_threshold: u32,
    ) -> Self {
        self.heartbeat_period = heartbeat_period;
        self.eviction_threshold = eviction_threshold;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_params_are_valid() {
        Params::default().validate().unwrap();
    }

    #[test]
    fn invalid_params_are_rejected() {
        let base = Params::default();
        let cases: Vec<(Params, &str)> = vec![
            (
                Params {
                    hc: 0,
                    ..base.clone()
                },
                "hc",
            ),
            (
                Params {
                    rwl: 0,
                    ..base.clone()
                },
                "rwl",
            ),
            (
                Params {
                    gmin: 0,
                    ..base.clone()
                },
                "gmin",
            ),
            (
                Params {
                    gmin: 20,
                    gmax: 10,
                    ..base.clone()
                },
                "gmin",
            ),
            (
                Params {
                    gmax: 3,
                    gmin: 2,
                    ..base.clone()
                },
                "gmax",
            ),
            (
                Params {
                    round: Duration::ZERO,
                    ..base.clone()
                },
                "round",
            ),
            (
                Params {
                    heartbeat_period: Duration::ZERO,
                    ..base.clone()
                },
                "heartbeat",
            ),
            (
                Params {
                    eviction_threshold: 0,
                    ..base.clone()
                },
                "eviction",
            ),
            (
                Params {
                    rho: 0,
                    ..base.clone()
                },
                "rho",
            ),
            (
                Params {
                    chunks_per_file: 0,
                    ..base.clone()
                },
                "chunks",
            ),
            (
                Params {
                    gossip: GossipPolicy::Cycles(0),
                    ..base.clone()
                },
                "cycle",
            ),
            (
                Params {
                    gossip: GossipPolicy::Cycles(200),
                    ..base.clone()
                },
                "cycle",
            ),
            (
                Params {
                    gossip: GossipPolicy::Random { percent: 150 },
                    ..base
                },
                "probability",
            ),
        ];
        for (p, needle) in cases {
            let err = p.validate().unwrap_err();
            let msg = err.to_string();
            assert!(
                msg.to_lowercase().contains(needle),
                "expected error about {needle:?}, got {msg:?}"
            );
        }
    }

    #[test]
    fn expected_group_size_is_logarithmic() {
        let p = Params::default();
        let g_100 = p.expected_group_size(100);
        let g_10000 = p.expected_group_size(10_000);
        assert!(g_100 >= p.gmin);
        // Quadrupling the exponent only doubles the group size.
        assert!(g_10000 < g_100 * 3);
        assert!(g_10000 > g_100);
    }

    #[test]
    fn with_expected_size_keeps_bounds_consistent() {
        for n in [10usize, 100, 1_000, 10_000, 100_000] {
            let p = Params::default().with_expected_size(n);
            p.validate().unwrap();
            assert!(p.gmin * 2 <= p.gmax + 1, "gmin {} gmax {}", p.gmin, p.gmax);
        }
    }

    #[test]
    fn builder_setters() {
        let p = Params::default()
            .with_smr(SmrMode::Asynchronous)
            .with_gossip(GossipPolicy::Cycles(2))
            .with_overlay(6, 9)
            .with_group_bounds(5, 12)
            .with_round(Duration::from_millis(1_500))
            .with_link_repair(false);
        assert_eq!(p.smr, SmrMode::Asynchronous);
        assert!(!p.link_repair);
        assert_eq!(p.gossip, GossipPolicy::Cycles(2));
        assert_eq!(p.hc, 6);
        assert_eq!(p.rwl, 9);
        assert_eq!(p.gmin, 5);
        assert_eq!(p.gmax, 12);
        assert_eq!(p.round.as_millis(), 1_500);
        p.validate().unwrap();
    }

    #[test]
    fn serde_roundtrip() {
        let p = Params::default().with_smr(SmrMode::Asynchronous);
        let json = serde_json::to_string(&p).unwrap();
        let back: Params = serde_json::from_str(&json).unwrap();
        assert_eq!(p, back);
    }
}
