//! The client-facing edge protocol: the request/response vocabulary an
//! external client speaks to an Atum gateway.
//!
//! External clients are not Atum nodes: they hold no membership, run no
//! overlay and are not trusted. They talk to a *gateway* over the same
//! length-prefixed framing as the node-to-node wire (8-byte header, magic +
//! version + kind + `u32` body length) but with their own frame kinds —
//! [`FRAME_KIND_EDGE_REQUEST`](crate::wire::FRAME_KIND_EDGE_REQUEST) /
//! [`FRAME_KIND_EDGE_RESPONSE`](crate::wire::FRAME_KIND_EDGE_RESPONSE) — so
//! a client frame arriving on a node listener (or a node frame arriving on
//! a gateway listener) is a protocol violation that closes the connection.
//!
//! The vocabulary is deliberately tiny: one request envelope carrying a
//! correlation sequence number, an optional idempotency key, an optional
//! per-request deadline, and one operation drawn from the three application
//! services (ASub publish, AShare-style fetch, AStream-style append) plus
//! the two probe operations (`Health`, `Stats`). Every reply carries a
//! machine-readable [`EdgeStatus`] so saturation and shutdown degrade to
//! *fast, typed rejection* (`Overloaded`, `ShuttingDown`) instead of
//! silence.
//!
//! Variant tags are wire ABI — append new variants, never renumber.

use crate::wire::{WireDecode, WireEncode, WireError, WireReader, WireWriter};

/// One client request to a gateway.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EdgeRequest {
    /// Client-chosen correlation number, echoed verbatim in the response.
    /// Clients pipelining several requests on one connection match replies
    /// by this value.
    pub seq: u64,
    /// Client-supplied idempotency key. Two write requests carrying the
    /// same key apply at most once: the gateway caches the first outcome
    /// (bounded, TTL-limited) and replays it with
    /// [`EdgeStatus::Duplicate`] for retries.
    pub idempotency_key: Option<u64>,
    /// Per-request deadline in milliseconds from gateway receipt; `0`
    /// selects the gateway's default. Queue wait, execution and every
    /// retry all count against it.
    pub deadline_ms: u32,
    /// The operation.
    pub op: EdgeOp,
}

/// The operation a client asks the gateway to perform.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EdgeOp {
    /// Liveness/readiness probe (`/healthz`-style). Answered by the
    /// gateway itself, bypassing admission, so it stays truthful under
    /// overload and during drain.
    Health,
    /// Gateway statistics snapshot (counters, breaker states, queue
    /// depths) as one JSON object. Also answered by the gateway itself.
    Stats,
    /// ASub: publish `payload` on `topic` (a write; benefits from an
    /// idempotency key).
    Publish {
        /// Raw topic identifier.
        topic: u64,
        /// Application payload.
        payload: Vec<u8>,
    },
    /// AShare-style read: fetch the value stored under `key`.
    Fetch {
        /// Raw key identifier.
        key: u64,
    },
    /// AStream-style write: append `chunk` to `stream` (a write; benefits
    /// from an idempotency key).
    Append {
        /// Raw stream identifier.
        stream: u64,
        /// Chunk bytes.
        chunk: Vec<u8>,
    },
}

/// One gateway reply.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EdgeResponse {
    /// The request's correlation number, echoed verbatim.
    pub seq: u64,
    /// Machine-readable outcome.
    pub status: EdgeStatus,
    /// Operation result bytes (empty on failures; the original cached
    /// result on [`EdgeStatus::Duplicate`]).
    pub payload: Vec<u8>,
}

/// Machine-readable request outcome. The non-`Ok` variants are the edge's
/// robustness contract: every failure mode a client can hit has a typed,
/// immediate answer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum EdgeStatus {
    /// The operation executed.
    Ok = 0,
    /// The admission queue was full; the request was shed without
    /// executing. Retry with backoff.
    Overloaded = 1,
    /// No backend could serve the request (breakers open, backends
    /// failing) within its retry budget.
    Unavailable = 2,
    /// The request's deadline expired before an attempt succeeded.
    DeadlineExceeded = 3,
    /// The request was malformed at the semantic level (unknown operation
    /// arguments, oversized payload).
    BadRequest = 4,
    /// The gateway is draining for shutdown and admits no new work.
    ShuttingDown = 5,
    /// The idempotency key was already applied; the payload replays the
    /// original outcome. The write did NOT apply a second time.
    Duplicate = 6,
}

impl EdgeStatus {
    /// Reconstructs a status from its wire tag.
    pub fn from_u8(raw: u8) -> Option<EdgeStatus> {
        Some(match raw {
            0 => EdgeStatus::Ok,
            1 => EdgeStatus::Overloaded,
            2 => EdgeStatus::Unavailable,
            3 => EdgeStatus::DeadlineExceeded,
            4 => EdgeStatus::BadRequest,
            5 => EdgeStatus::ShuttingDown,
            6 => EdgeStatus::Duplicate,
            _ => return None,
        })
    }

    /// The stable lowercase name (used in stats snapshots and logs).
    pub const fn as_str(self) -> &'static str {
        match self {
            EdgeStatus::Ok => "ok",
            EdgeStatus::Overloaded => "overloaded",
            EdgeStatus::Unavailable => "unavailable",
            EdgeStatus::DeadlineExceeded => "deadline-exceeded",
            EdgeStatus::BadRequest => "bad-request",
            EdgeStatus::ShuttingDown => "shutting-down",
            EdgeStatus::Duplicate => "duplicate",
        }
    }
}

impl WireEncode for EdgeOp {
    fn wire_encode(&self, w: &mut WireWriter<'_>) {
        match self {
            EdgeOp::Health => w.put_u8(0),
            EdgeOp::Stats => w.put_u8(1),
            EdgeOp::Publish { topic, payload } => {
                w.put_u8(2);
                w.put_u64(*topic);
                payload.wire_encode(w);
            }
            EdgeOp::Fetch { key } => {
                w.put_u8(3);
                w.put_u64(*key);
            }
            EdgeOp::Append { stream, chunk } => {
                w.put_u8(4);
                w.put_u64(*stream);
                chunk.wire_encode(w);
            }
        }
    }
}

impl WireDecode for EdgeOp {
    fn wire_decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(match r.take_u8()? {
            0 => EdgeOp::Health,
            1 => EdgeOp::Stats,
            2 => EdgeOp::Publish {
                topic: r.take_u64()?,
                payload: Vec::<u8>::wire_decode(r)?,
            },
            3 => EdgeOp::Fetch { key: r.take_u64()? },
            4 => EdgeOp::Append {
                stream: r.take_u64()?,
                chunk: Vec::<u8>::wire_decode(r)?,
            },
            _ => return Err(WireError::Malformed("edge op tag")),
        })
    }
}

impl WireEncode for EdgeRequest {
    fn wire_encode(&self, w: &mut WireWriter<'_>) {
        w.put_u64(self.seq);
        self.idempotency_key.wire_encode(w);
        w.put_u32(self.deadline_ms);
        self.op.wire_encode(w);
    }
}

impl WireDecode for EdgeRequest {
    fn wire_decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(EdgeRequest {
            seq: r.take_u64()?,
            idempotency_key: Option::<u64>::wire_decode(r)?,
            deadline_ms: r.take_u32()?,
            op: EdgeOp::wire_decode(r)?,
        })
    }
}

impl WireEncode for EdgeResponse {
    fn wire_encode(&self, w: &mut WireWriter<'_>) {
        w.put_u64(self.seq);
        w.put_u8(self.status as u8);
        self.payload.wire_encode(w);
    }
}

impl WireDecode for EdgeResponse {
    fn wire_decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(EdgeResponse {
            seq: r.take_u64()?,
            status: EdgeStatus::from_u8(r.take_u8()?)
                .ok_or(WireError::Malformed("edge status tag"))?,
            payload: Vec::<u8>::wire_decode(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::{decode_exact, encode_to_vec};

    fn round_trip<T: WireEncode + WireDecode + PartialEq + std::fmt::Debug>(v: &T) {
        let bytes = encode_to_vec(v);
        let back: T = decode_exact(&bytes).expect("decode");
        assert_eq!(&back, v);
    }

    #[test]
    fn requests_round_trip_over_every_op() {
        for op in [
            EdgeOp::Health,
            EdgeOp::Stats,
            EdgeOp::Publish {
                topic: 9,
                payload: vec![1, 2, 3],
            },
            EdgeOp::Fetch { key: 0xdead },
            EdgeOp::Append {
                stream: 4,
                chunk: vec![0; 64],
            },
        ] {
            round_trip(&EdgeRequest {
                seq: 42,
                idempotency_key: Some(7),
                deadline_ms: 1500,
                op,
            });
        }
        round_trip(&EdgeRequest {
            seq: 0,
            idempotency_key: None,
            deadline_ms: 0,
            op: EdgeOp::Health,
        });
    }

    #[test]
    fn responses_round_trip_over_every_status() {
        for raw in 0..=6u8 {
            let status = EdgeStatus::from_u8(raw).expect("valid status");
            assert_eq!(status as u8, raw);
            round_trip(&EdgeResponse {
                seq: raw as u64,
                status,
                payload: vec![raw; raw as usize],
            });
        }
        assert_eq!(EdgeStatus::from_u8(7), None);
    }

    #[test]
    fn truncation_and_bad_tags_are_rejected() {
        let req = EdgeRequest {
            seq: 1,
            idempotency_key: Some(2),
            deadline_ms: 3,
            op: EdgeOp::Publish {
                topic: 4,
                payload: vec![5; 16],
            },
        };
        let bytes = encode_to_vec(&req);
        for cut in 0..bytes.len() {
            assert!(
                decode_exact::<EdgeRequest>(&bytes[..cut]).is_err(),
                "truncation at {cut} must fail"
            );
        }
        let mut bad = bytes.clone();
        // The op tag sits after seq (8) + Some-key (1 + 8) + deadline (4).
        bad[21] = 200;
        assert!(decode_exact::<EdgeRequest>(&bad).is_err());
    }
}
