//! Error type shared across the Atum crates.

use crate::id::{NodeId, VgroupId};
use std::fmt;

/// Convenience alias for results with [`AtumError`].
pub type Result<T> = std::result::Result<T, AtumError>;

/// Errors produced by Atum operations.
///
/// The middleware masks most remote faults by design (that is the point of
/// volatile groups); errors therefore mostly concern local misuse — invalid
/// configuration, calling an operation in the wrong state — plus the few
/// situations where an operation genuinely cannot proceed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AtumError {
    /// A configuration parameter (Table 1) is out of range or inconsistent.
    InvalidConfig {
        /// Which constraint was violated.
        reason: String,
    },
    /// The node attempted an operation that is only valid after joining
    /// (e.g. `broadcast` before `join`/`bootstrap` completed).
    NotJoined,
    /// The node attempted to join or bootstrap while already part of a
    /// system instance.
    AlreadyJoined,
    /// The contact node never answered the join request.
    ContactUnreachable {
        /// The contact that was tried.
        contact: NodeId,
    },
    /// A message was addressed to a vgroup this node does not know about
    /// (stale composition, or the group was merged away).
    UnknownVgroup {
        /// The stale group identifier.
        vgroup: VgroupId,
    },
    /// An application payload exceeded the configured maximum size.
    PayloadTooLarge {
        /// Size of the offending payload in bytes.
        size: usize,
        /// Configured maximum in bytes.
        max: usize,
    },
    /// A cryptographic check failed (bad signature, MAC or digest).
    AuthenticationFailed {
        /// Human-readable description of the failed check.
        what: String,
    },
    /// An AShare file or chunk was requested that the index does not know.
    NotFound {
        /// The key that was looked up.
        key: String,
    },
    /// AShare detected that every available replica of a chunk is corrupt.
    AllReplicasCorrupt {
        /// File the chunk belongs to.
        file: String,
        /// Index of the corrupt chunk.
        chunk: usize,
    },
    /// The operation would violate the namespace's write-access rules
    /// (AShare: only the owner may PUT/DELETE in their namespace).
    AccessDenied {
        /// Description of the denied operation.
        what: String,
    },
    /// An internal invariant was violated; indicates a bug rather than an
    /// environmental condition.
    Internal {
        /// Description of the violated invariant.
        reason: String,
    },
}

impl AtumError {
    /// Shorthand constructor for [`AtumError::InvalidConfig`].
    pub fn invalid_config(reason: impl Into<String>) -> Self {
        AtumError::InvalidConfig {
            reason: reason.into(),
        }
    }

    /// Shorthand constructor for [`AtumError::Internal`].
    pub fn internal(reason: impl Into<String>) -> Self {
        AtumError::Internal {
            reason: reason.into(),
        }
    }

    /// Shorthand constructor for [`AtumError::AuthenticationFailed`].
    pub fn auth(what: impl Into<String>) -> Self {
        AtumError::AuthenticationFailed { what: what.into() }
    }

    /// Shorthand constructor for [`AtumError::NotFound`].
    pub fn not_found(key: impl Into<String>) -> Self {
        AtumError::NotFound { key: key.into() }
    }
}

impl fmt::Display for AtumError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AtumError::InvalidConfig { reason } => write!(f, "invalid configuration: {reason}"),
            AtumError::NotJoined => write!(f, "node has not joined a system instance"),
            AtumError::AlreadyJoined => write!(f, "node already belongs to a system instance"),
            AtumError::ContactUnreachable { contact } => {
                write!(f, "contact node {contact} is unreachable")
            }
            AtumError::UnknownVgroup { vgroup } => write!(f, "unknown vgroup {vgroup}"),
            AtumError::PayloadTooLarge { size, max } => {
                write!(f, "payload of {size} bytes exceeds maximum of {max} bytes")
            }
            AtumError::AuthenticationFailed { what } => {
                write!(f, "authentication failed: {what}")
            }
            AtumError::NotFound { key } => write!(f, "not found: {key}"),
            AtumError::AllReplicasCorrupt { file, chunk } => {
                write!(
                    f,
                    "all replicas of chunk {chunk} of file {file:?} are corrupt"
                )
            }
            AtumError::AccessDenied { what } => write!(f, "access denied: {what}"),
            AtumError::Internal { reason } => write!(f, "internal error: {reason}"),
        }
    }
}

impl std::error::Error for AtumError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let cases: Vec<(AtumError, &str)> = vec![
            (AtumError::invalid_config("hc must be at least 1"), "hc"),
            (AtumError::NotJoined, "not joined"),
            (AtumError::AlreadyJoined, "already"),
            (
                AtumError::ContactUnreachable {
                    contact: NodeId::new(3),
                },
                "n3",
            ),
            (
                AtumError::UnknownVgroup {
                    vgroup: VgroupId::new(9),
                },
                "g9",
            ),
            (AtumError::PayloadTooLarge { size: 10, max: 5 }, "10 bytes"),
            (AtumError::auth("bad signature"), "bad signature"),
            (AtumError::not_found("file.txt"), "file.txt"),
            (
                AtumError::AllReplicasCorrupt {
                    file: "f".into(),
                    chunk: 2,
                },
                "chunk 2",
            ),
            (
                AtumError::AccessDenied {
                    what: "foreign namespace".into(),
                },
                "denied",
            ),
            (AtumError::internal("oops"), "oops"),
        ];
        for (err, needle) in cases {
            assert!(
                err.to_string()
                    .to_lowercase()
                    .contains(&needle.to_lowercase()),
                "{err} should mention {needle}"
            );
        }
    }

    #[test]
    fn error_is_std_error() {
        fn assert_error<E: std::error::Error + Send + Sync + 'static>() {}
        assert_error::<AtumError>();
    }
}
