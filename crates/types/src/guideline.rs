//! The configuration guideline of Figure 4: recommended random-walk length
//! (`rwl`) for a given overlay density (`hc`) and number of vgroups.
//!
//! The paper derives the guideline by simulating random walks on H-graphs and
//! accepting the shortest walk length whose vgroup-selection distribution is
//! indistinguishable from uniform under Pearson's χ² test at confidence 0.99.
//! The `fig04` experiment binary regenerates the full guideline; this module
//! provides the closed-form approximation that the rest of the system (and
//! its tests) use to pick parameters without re-running the simulation.

use serde::{Deserialize, Serialize};

/// One row of the guideline: for `vgroups` groups connected by `hc` cycles,
/// walks of length `rwl` sample uniformly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GuidelineEntry {
    /// Number of vgroups in the system.
    pub vgroups: usize,
    /// Number of H-graph cycles.
    pub hc: u8,
    /// Recommended random-walk length.
    pub rwl: u8,
}

/// Returns the recommended random-walk length for a system with `vgroups`
/// groups and an H-graph of `hc` cycles.
///
/// The walk must be long enough for the walk's position distribution to mix;
/// on a 2·`hc`-regular random multigraph the mixing time is
/// O(log(vgroups) / log(2·hc)), and the constant is calibrated against the
/// paper's Figure 4 (e.g. ≈9 for 128 vgroups at `hc` = 6, ≈10 for ~120 groups
/// at `hc` = 5, 5–7 for small systems, 13–15 for 8192 groups at low density).
pub fn recommended_rwl(vgroups: usize, hc: u8) -> u8 {
    let v = vgroups.max(2) as f64;
    let degree = (2.0 * hc.max(1) as f64).max(3.0);
    // Mixing estimate log_degree(v), scaled by a constant calibrated against
    // the paper's anchor points (128 vgroups / hc 6 → rwl 9; ~120 / hc 5 → 10).
    let mixing = v.ln() / degree.ln();
    let rwl = (4.6 * mixing).round();
    rwl.clamp(4.0, 15.0) as u8
}

/// Returns the recommended `(rwl, hc)` pair for an expected number of
/// vgroups, choosing the density that the paper's experiments use for that
/// scale (denser graphs for larger systems keep walks short).
pub fn recommended_params(vgroups: usize) -> GuidelineEntry {
    let hc = if vgroups <= 16 {
        2
    } else if vgroups <= 64 {
        3
    } else if vgroups <= 160 {
        5
    } else if vgroups <= 1024 {
        6
    } else if vgroups <= 4096 {
        8
    } else {
        10
    };
    GuidelineEntry {
        vgroups,
        hc,
        rwl: recommended_rwl(vgroups, hc),
    }
}

/// The vgroup counts the paper sweeps in Figure 4.
pub const FIGURE4_VGROUP_COUNTS: [usize; 6] = [8, 32, 128, 512, 2048, 8192];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwl_grows_with_system_size() {
        let small = recommended_rwl(8, 4);
        let medium = recommended_rwl(128, 4);
        let large = recommended_rwl(8192, 4);
        assert!(small <= medium && medium <= large);
        assert!(large > small);
    }

    #[test]
    fn rwl_shrinks_with_density() {
        let sparse = recommended_rwl(2048, 2);
        let dense = recommended_rwl(2048, 12);
        assert!(
            dense < sparse,
            "dense {dense} should be below sparse {sparse}"
        );
    }

    #[test]
    fn rwl_stays_in_table1_range() {
        for &v in &FIGURE4_VGROUP_COUNTS {
            for hc in 2..=12u8 {
                let rwl = recommended_rwl(v, hc);
                assert!(
                    (4..=15).contains(&rwl),
                    "rwl {rwl} out of range for v={v} hc={hc}"
                );
            }
        }
    }

    #[test]
    fn matches_paper_anchor_points() {
        // §3.2: "in a system of roughly 128 vgroups, we set rwl to 9 and hc to 6"
        let rwl_128_6 = recommended_rwl(128, 6);
        assert!((8..=10).contains(&rwl_128_6), "got {rwl_128_6}");
        // §6.1.1: "for a system with 800 nodes in roughly 120 vgroups, (hc, rwl) = (5, 10)"
        let rwl_120_5 = recommended_rwl(120, 5);
        assert!((9..=11).contains(&rwl_120_5), "got {rwl_120_5}");
        // §6.1.2 uses (rwl=6, hc=8) and (rwl=11, hc=5) as plausible configs for ≤800 nodes.
        let rwl_dense = recommended_rwl(64, 8);
        assert!(rwl_dense <= 8, "got {rwl_dense}");
    }

    #[test]
    fn recommended_params_density_increases_with_scale() {
        let mut last_hc = 0;
        for &v in &FIGURE4_VGROUP_COUNTS {
            let e = recommended_params(v);
            assert!(e.hc >= last_hc);
            assert_eq!(e.vgroups, v);
            last_hc = e.hc;
        }
    }
}
