//! Opaque identifiers for nodes, volatile groups, broadcasts and walks.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a single node (one participant process) in the system.
///
/// Node identifiers are assigned by the application when the node is created
/// (in a deployment they would be derived from the node's public key; in the
/// simulator they are dense integers so they can double as vector indices).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct NodeId(u64);

impl NodeId {
    /// Creates a node identifier from a raw integer.
    pub const fn new(raw: u64) -> Self {
        NodeId(raw)
    }

    /// Returns the raw integer value.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Returns the identifier as a `usize` index (useful for dense vectors in
    /// the simulator).
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl From<u64> for NodeId {
    fn from(raw: u64) -> Self {
        NodeId(raw)
    }
}

/// Identifier of a volatile group (vgroup).
///
/// Vgroup identifiers are unique over the lifetime of a system instance: a
/// split creates a fresh identifier for the new group, and a merge retires
/// the identifier of the dissolved group.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct VgroupId(u64);

impl VgroupId {
    /// Creates a vgroup identifier from a raw integer.
    pub const fn new(raw: u64) -> Self {
        VgroupId(raw)
    }

    /// Returns the raw integer value.
    pub const fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for VgroupId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "g{}", self.0)
    }
}

impl From<u64> for VgroupId {
    fn from(raw: u64) -> Self {
        VgroupId(raw)
    }
}

/// Identifier of an application-level broadcast: the originating node plus a
/// per-origin sequence number.
///
/// Broadcast identifiers are what the gossip layer deduplicates on, and what
/// applications use to correlate [`deliver`](crate::config::Params) callbacks
/// with their own bookkeeping.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct BroadcastId {
    /// Node that invoked `broadcast`.
    pub origin: NodeId,
    /// Per-origin sequence number, starting at 0.
    pub seq: u64,
}

impl BroadcastId {
    /// Creates a broadcast identifier.
    pub const fn new(origin: NodeId, seq: u64) -> Self {
        BroadcastId { origin, seq }
    }
}

impl fmt::Display for BroadcastId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b{}.{}", self.origin.raw(), self.seq)
    }
}

/// Identifier of a random walk: the vgroup that initiated it plus a
/// per-vgroup sequence number.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct WalkId {
    /// Vgroup that started the walk.
    pub origin: VgroupId,
    /// Per-origin sequence number.
    pub seq: u64,
}

impl WalkId {
    /// Creates a walk identifier.
    pub const fn new(origin: VgroupId, seq: u64) -> Self {
        WalkId { origin, seq }
    }
}

impl fmt::Display for WalkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "w{}.{}", self.origin.raw(), self.seq)
    }
}

/// Identifier of an ASub topic (each topic is its own Atum instance).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct TopicId(u64);

impl TopicId {
    /// Creates a topic identifier from a raw integer.
    pub const fn new(raw: u64) -> Self {
        TopicId(raw)
    }

    /// Returns the raw integer value.
    pub const fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for TopicId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// A (simulated) network address: IPv4-style address plus port.
///
/// The simulator does not route on addresses, but the API mirrors the paper's
/// `ownIdentity` argument to `bootstrap`, which carries the address other
/// nodes use to join.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct NetAddr {
    /// IPv4 address octets.
    pub ip: [u8; 4],
    /// TCP/UDP port.
    pub port: u16,
}

impl NetAddr {
    /// Creates an address from octets and a port.
    pub const fn new(ip: [u8; 4], port: u16) -> Self {
        NetAddr { ip, port }
    }

    /// Derives a deterministic placeholder address for a node identifier.
    ///
    /// Used by the simulator so that every node has a plausible-looking
    /// address without any configuration.
    pub fn for_node(id: NodeId) -> Self {
        let raw = id.raw();
        NetAddr {
            ip: [10, (raw >> 16) as u8, (raw >> 8) as u8, raw as u8],
            port: 7000 + (raw % 1000) as u16,
        }
    }
}

impl fmt::Display for NetAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}.{}.{}.{}:{}",
            self.ip[0], self.ip[1], self.ip[2], self.ip[3], self.port
        )
    }
}

/// The public identity of a node: identifier plus network address.
///
/// A deployment would also carry the node's public key; in this code base the
/// key registry lives in `atum-crypto` and is looked up by [`NodeId`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeIdentity {
    /// The node's identifier.
    pub id: NodeId,
    /// The address other nodes use to reach it.
    pub addr: NetAddr,
}

impl NodeIdentity {
    /// Creates an identity from an identifier and an address.
    pub const fn new(id: NodeId, addr: NetAddr) -> Self {
        NodeIdentity { id, addr }
    }

    /// Creates an identity with a deterministic placeholder address.
    pub fn simulated(id: NodeId) -> Self {
        NodeIdentity {
            id,
            addr: NetAddr::for_node(id),
        }
    }
}

impl fmt::Display for NodeIdentity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{}", self.id, self.addr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_roundtrip() {
        let id = NodeId::new(42);
        assert_eq!(id.raw(), 42);
        assert_eq!(id.index(), 42);
        assert_eq!(NodeId::from(42u64), id);
        assert_eq!(id.to_string(), "n42");
    }

    #[test]
    fn vgroup_id_roundtrip() {
        let id = VgroupId::new(7);
        assert_eq!(id.raw(), 7);
        assert_eq!(VgroupId::from(7u64), id);
        assert_eq!(id.to_string(), "g7");
    }

    #[test]
    fn broadcast_id_ordering_is_by_origin_then_seq() {
        let a = BroadcastId::new(NodeId::new(1), 5);
        let b = BroadcastId::new(NodeId::new(2), 0);
        let c = BroadcastId::new(NodeId::new(1), 6);
        assert!(a < b);
        assert!(a < c);
        assert!(c < b);
    }

    #[test]
    fn walk_id_display() {
        let w = WalkId::new(VgroupId::new(3), 9);
        assert_eq!(w.to_string(), "w3.9");
    }

    #[test]
    fn net_addr_for_node_is_deterministic_and_distinct() {
        let a1 = NetAddr::for_node(NodeId::new(1));
        let a2 = NetAddr::for_node(NodeId::new(1));
        let b = NetAddr::for_node(NodeId::new(2));
        assert_eq!(a1, a2);
        assert_ne!(a1, b);
        assert!(a1.to_string().starts_with("10."));
    }

    #[test]
    fn identity_display_contains_both_parts() {
        let ident = NodeIdentity::simulated(NodeId::new(5));
        let s = ident.to_string();
        assert!(s.contains("n5"));
        assert!(s.contains(':'));
    }

    #[test]
    fn serde_roundtrip() {
        let ident = NodeIdentity::simulated(NodeId::new(77));
        let json = serde_json::to_string(&ident).unwrap();
        let back: NodeIdentity = serde_json::from_str(&json).unwrap();
        assert_eq!(ident, back);
    }
}
