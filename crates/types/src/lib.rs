//! Core identifiers, configuration and shared data types for the Atum
//! group-communication middleware.
//!
//! This crate is dependency-light on purpose: every other crate in the
//! workspace builds on these definitions.
//!
//! # Overview
//!
//! * [`NodeId`], [`VgroupId`], [`BroadcastId`] — opaque identifiers.
//! * [`NodeIdentity`] and [`NetAddr`] — how a node presents itself to the
//!   system (identifier + network address).
//! * [`Composition`] — the membership of a volatile group, with the quorum
//!   arithmetic used throughout the paper (majority, ⌊(g−1)/2⌋, ⌊(g−1)/3⌋).
//! * [`Params`] — the system parameters of Table 1 (`hc`, `rwl`, `gmin`,
//!   `gmax`, `k`) plus the operational knobs used by the implementation.
//! * [`guideline`] — the configuration guideline of Figure 4, mapping a
//!   target number of vgroups to recommended `(rwl, hc)` pairs.
//! * [`WireSize`] — byte-size accounting used by the network simulator for
//!   bandwidth and serialisation-delay modelling.
//!
//! # Example
//!
//! ```
//! use atum_types::{Composition, NodeId, Params, SmrMode};
//!
//! let comp: Composition = (0..7).map(NodeId::new).collect();
//! assert_eq!(comp.len(), 7);
//! // A 7-node vgroup tolerates 3 faults synchronously, 2 asynchronously.
//! assert_eq!(comp.max_faults(SmrMode::Synchronous), 3);
//! assert_eq!(comp.max_faults(SmrMode::Asynchronous), 2);
//!
//! let params = Params::default();
//! assert!(params.gmin <= params.gmax);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod composition;
pub mod config;
pub mod edge;
pub mod error;
pub mod guideline;
pub mod id;
pub mod time;
pub mod wire;

pub use composition::Composition;
pub use config::{GossipPolicy, Params, SmrMode};
pub use edge::{EdgeOp, EdgeRequest, EdgeResponse, EdgeStatus};
pub use error::{AtumError, Result};
pub use guideline::{recommended_params, GuidelineEntry};
pub use id::{BroadcastId, NetAddr, NodeId, NodeIdentity, TopicId, VgroupId, WalkId};
pub use time::{Duration, Instant};
pub use wire::{FrameMemo, WireDecode, WireEncode, WireError, WireReader, WireSize, WireWriter};
