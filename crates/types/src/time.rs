//! Simulated time primitives shared by the simulator and the protocols.
//!
//! The discrete-event simulator advances a virtual clock; protocols never
//! read wall-clock time. Both [`Instant`] and [`Duration`] are measured in
//! integer **microseconds**, which is fine-grained enough to model
//! sub-millisecond LAN latencies and coarse enough to avoid floating-point
//! drift across platforms.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time (microseconds since simulation start).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct Instant(u64);

/// A span of simulated time (microseconds).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct Duration(u64);

impl Instant {
    /// The simulation epoch (time zero).
    pub const ZERO: Instant = Instant(0);

    /// Creates an instant from microseconds since the epoch.
    pub const fn from_micros(us: u64) -> Self {
        Instant(us)
    }

    /// Microseconds since the epoch.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Seconds since the epoch, as a float (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Time elapsed since `earlier`, saturating at zero.
    pub fn saturating_since(self, earlier: Instant) -> Duration {
        Duration(self.0.saturating_sub(earlier.0))
    }
}

impl Duration {
    /// Zero-length duration.
    pub const ZERO: Duration = Duration(0);

    /// Creates a duration from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        Duration(us)
    }

    /// Creates a duration from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        Duration(ms * 1_000)
    }

    /// Creates a duration from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        Duration(s * 1_000_000)
    }

    /// Creates a duration from fractional seconds (rounds to microseconds).
    pub fn from_secs_f64(s: f64) -> Self {
        Duration((s.max(0.0) * 1_000_000.0).round() as u64)
    }

    /// Microseconds in this duration.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Milliseconds in this duration (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// Seconds as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Multiplies the duration by an integer factor, saturating on overflow.
    pub fn saturating_mul(self, factor: u64) -> Duration {
        Duration(self.0.saturating_mul(factor))
    }

    /// Checked subtraction.
    pub fn checked_sub(self, other: Duration) -> Option<Duration> {
        self.0.checked_sub(other.0).map(Duration)
    }
}

impl Add<Duration> for Instant {
    type Output = Instant;
    fn add(self, rhs: Duration) -> Instant {
        Instant(self.0 + rhs.0)
    }
}

impl AddAssign<Duration> for Instant {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl Sub<Instant> for Instant {
    type Output = Duration;
    fn sub(self, rhs: Instant) -> Duration {
        Duration(self.0.saturating_sub(rhs.0))
    }
}

impl Add<Duration> for Duration {
    type Output = Duration;
    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0 + rhs.0)
    }
}

impl AddAssign<Duration> for Duration {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl Sub<Duration> for Duration {
    type Output = Duration;
    fn sub(self, rhs: Duration) -> Duration {
        Duration(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Display for Instant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(Duration::from_millis(3).as_micros(), 3_000);
        assert_eq!(Duration::from_secs(2).as_millis(), 2_000);
        assert_eq!(Duration::from_secs_f64(0.5).as_micros(), 500_000);
        assert_eq!(Duration::from_secs_f64(-1.0), Duration::ZERO);
        assert!((Duration::from_secs(3).as_secs_f64() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn instant_arithmetic() {
        let t0 = Instant::ZERO;
        let t1 = t0 + Duration::from_secs(1);
        assert_eq!((t1 - t0).as_millis(), 1_000);
        // Subtraction saturates rather than underflowing.
        assert_eq!((t0 - t1).as_micros(), 0);
        assert_eq!(t1.saturating_since(t0).as_millis(), 1_000);
        assert_eq!(t0.saturating_since(t1), Duration::ZERO);
    }

    #[test]
    fn duration_arithmetic() {
        let d = Duration::from_millis(1500);
        assert_eq!((d + Duration::from_millis(500)).as_millis(), 2_000);
        assert_eq!((d - Duration::from_millis(2_000)).as_micros(), 0);
        assert_eq!(d.saturating_mul(2).as_millis(), 3_000);
        assert_eq!(d.checked_sub(Duration::from_secs(2)), None);
        assert_eq!(
            d.checked_sub(Duration::from_millis(500)),
            Some(Duration::from_secs(1))
        );
    }

    #[test]
    fn ordering_and_display() {
        assert!(Instant::from_micros(5) < Instant::from_micros(6));
        assert_eq!(Duration::from_millis(1500).to_string(), "1.500s");
        assert_eq!(Instant::from_micros(2_000_000).to_string(), "2.000s");
    }

    #[test]
    fn add_assign() {
        let mut t = Instant::ZERO;
        t += Duration::from_secs(3);
        assert_eq!(t.as_secs_f64() as u64, 3);
        let mut d = Duration::from_secs(1);
        d += Duration::from_secs(2);
        assert_eq!(d.as_secs_f64() as u64, 3);
    }
}
