//! Byte-size accounting for bandwidth and serialisation-delay modelling.
//!
//! The network simulator charges every message a transmission delay
//! proportional to its size. Rather than serialising every message for real
//! (which would dominate simulation cost), message types implement
//! [`WireSize`] and report a size estimate modelled on a compact binary
//! encoding, including the cryptographic material (64-byte signatures,
//! 32-byte digests/MACs) a deployment would carry.

use crate::composition::Composition;
use crate::id::{BroadcastId, NodeId, NodeIdentity, VgroupId, WalkId};

/// Size of a signature on the wire, modelled on Ed25519 (bytes).
pub const SIGNATURE_SIZE: usize = 64;
/// Size of a digest or MAC on the wire, modelled on SHA-256/HMAC (bytes).
pub const DIGEST_SIZE: usize = 32;
/// Fixed per-message envelope overhead (type tags, lengths, sender, sequence
/// numbers, transport framing).
pub const ENVELOPE_OVERHEAD: usize = 48;

/// Types that know their approximate encoded size in bytes.
pub trait WireSize {
    /// Approximate number of bytes this value occupies on the wire.
    fn wire_size(&self) -> usize;
}

impl WireSize for NodeId {
    fn wire_size(&self) -> usize {
        8
    }
}

impl WireSize for VgroupId {
    fn wire_size(&self) -> usize {
        8
    }
}

impl WireSize for BroadcastId {
    fn wire_size(&self) -> usize {
        16
    }
}

impl WireSize for WalkId {
    fn wire_size(&self) -> usize {
        16
    }
}

impl WireSize for NodeIdentity {
    fn wire_size(&self) -> usize {
        8 + 6 // id + ip:port
    }
}

impl WireSize for Composition {
    fn wire_size(&self) -> usize {
        4 + self.len() * 8
    }
}

impl WireSize for u64 {
    fn wire_size(&self) -> usize {
        8
    }
}

impl WireSize for u32 {
    fn wire_size(&self) -> usize {
        4
    }
}

impl WireSize for bool {
    fn wire_size(&self) -> usize {
        1
    }
}

impl<T: WireSize> WireSize for Option<T> {
    fn wire_size(&self) -> usize {
        1 + self.as_ref().map_or(0, WireSize::wire_size)
    }
}

impl<T: WireSize> WireSize for Vec<T> {
    fn wire_size(&self) -> usize {
        4 + self.iter().map(WireSize::wire_size).sum::<usize>()
    }
}

impl<T: WireSize> WireSize for &T {
    fn wire_size(&self) -> usize {
        (*self).wire_size()
    }
}

impl WireSize for Vec<u8> {
    fn wire_size(&self) -> usize {
        4 + self.len()
    }
}

impl WireSize for String {
    fn wire_size(&self) -> usize {
        4 + self.len()
    }
}

impl<A: WireSize, B: WireSize> WireSize for (A, B) {
    fn wire_size(&self) -> usize {
        self.0.wire_size() + self.1.wire_size()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_sizes() {
        assert_eq!(NodeId::new(1).wire_size(), 8);
        assert_eq!(VgroupId::new(1).wire_size(), 8);
        assert_eq!(BroadcastId::new(NodeId::new(1), 2).wire_size(), 16);
        assert_eq!(7u64.wire_size(), 8);
        assert_eq!(7u32.wire_size(), 4);
        assert_eq!(true.wire_size(), 1);
    }

    #[test]
    fn container_sizes() {
        let comp: Composition = (0..10).map(NodeId::new).collect();
        assert_eq!(comp.wire_size(), 4 + 80);
        let v: Vec<NodeId> = (0..3).map(NodeId::new).collect();
        assert_eq!(v.wire_size(), 4 + 24);
        let bytes: Vec<u8> = vec![0u8; 100];
        assert_eq!(bytes.wire_size(), 104);
        assert_eq!("hello".to_string().wire_size(), 9);
        assert_eq!(Some(NodeId::new(1)).wire_size(), 9);
        assert_eq!(Option::<NodeId>::None.wire_size(), 1);
        assert_eq!((NodeId::new(1), 4u32).wire_size(), 12);
    }

    #[test]
    fn reference_forwarding() {
        let id = NodeId::new(9);
        // Exercise the blanket `impl WireSize for &T` explicitly.
        assert_eq!(<&NodeId as WireSize>::wire_size(&&id), id.wire_size());
    }
}
