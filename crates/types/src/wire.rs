//! The wire codec and byte-size accounting shared by the simulator and the
//! TCP runtime.
//!
//! Two related facilities live here:
//!
//! * **The binary codec** — [`WireEncode`]/[`WireDecode`] over
//!   [`WireWriter`]/[`WireReader`]: the compact, positional, little-endian
//!   encoding every Atum protocol type implements in its own crate (ids and
//!   compositions here, digests and signature chains in `atum-crypto`, walks
//!   and neighbour tables in `atum-overlay`, SMR messages in `atum-smr`, the
//!   full message tree in `atum-core`). The TCP runtime (`atum-net`) frames
//!   these encodings onto sockets; see the frame constants below.
//! * **[`WireSize`]** — the per-message byte count the simulator charges for
//!   serialisation delay and bandwidth statistics. Message types whose codec
//!   implementation exists delegate to the *exact* encoded size (a counting
//!   [`WireWriter`] pass, no allocation); the remaining impls are estimates
//!   for types that never travel alone.
//!
//! # Encoding conventions
//!
//! Integers are fixed-width little-endian; `bool` is one byte (`0`/`1`,
//! decoders reject anything else); sequences are a `u32` length prefix
//! followed by the elements; `Option` is a one-byte presence tag; enums are a
//! one-byte variant tag followed by the fields in declaration order. Variant
//! tags are wire ABI — append new variants, never renumber.
//!
//! # Decode hardening
//!
//! Every read is bounds-checked ([`WireError::Truncated`] instead of a
//! panic), sequence lengths are validated against the bytes actually
//! remaining before any allocation ([`WireReader::take_len`]), and top-level
//! decoders require exact consumption ([`WireReader::finish`] turns trailing
//! garbage into [`WireError::TrailingBytes`]).

use crate::composition::Composition;
use crate::id::{BroadcastId, NetAddr, NodeId, NodeIdentity, VgroupId, WalkId};
use std::fmt;
use std::sync::Arc;

/// Size of a signature on the wire (bytes). The workspace's keyed-hash
/// signature scheme produces 32-byte tags, and that is what the codec
/// actually encodes; an Ed25519 deployment would carry 64.
pub const SIGNATURE_SIZE: usize = 32;
/// Size of a digest or MAC on the wire, modelled on SHA-256/HMAC (bytes).
pub const DIGEST_SIZE: usize = 32;
/// Modelled per-message transport overhead (TCP/IP headers and ACK share)
/// charged by the simulator on top of the encoded frame.
pub const ENVELOPE_OVERHEAD: usize = 48;

// ---------------------------------------------------------------- framing

/// Magic bytes opening every frame.
pub const FRAME_MAGIC: [u8; 2] = *b"AT";
/// Wire-format version carried in every frame header. Version 2 introduced
/// the [`FRAME_KIND_ROUTE`] frame: connections are no longer a dedicated
/// pipe between one node pair, so every message frame is preceded by a
/// route frame naming its endpoints.
pub const WIRE_VERSION: u8 = 2;
/// Frame kind: connection handshake (`Hello`).
pub const FRAME_KIND_HELLO: u8 = 0;
/// Frame kind: an encoded `AtumMessage`.
pub const FRAME_KIND_MESSAGE: u8 = 1;
/// Frame kind: the `(from, to)` routing header preceding a message frame.
/// Kept outside the message frame so the message bytes stay identical
/// across every recipient of a fan-out (the encode-once `Arc<[u8]>` path).
pub const FRAME_KIND_ROUTE: u8 = 2;
/// Frame kind: an encoded [`EdgeRequest`](crate::edge::EdgeRequest) from an
/// external client to a gateway. Edge kinds share the frame header format
/// (and version) with the node-to-node wire but are only ever valid on a
/// gateway's client listener — a node connection that receives one closes,
/// and vice versa.
pub const FRAME_KIND_EDGE_REQUEST: u8 = 3;
/// Frame kind: an encoded [`EdgeResponse`](crate::edge::EdgeResponse) from
/// a gateway back to an external client.
pub const FRAME_KIND_EDGE_RESPONSE: u8 = 4;
/// Bytes of the frame header: magic (2), version (1), kind (1), body length
/// (`u32` little-endian).
pub const FRAME_HEADER_LEN: usize = 8;
/// Maximum accepted frame body. Larger length prefixes are rejected before
/// any allocation, so a hostile peer cannot make a node reserve gigabytes.
pub const MAX_FRAME_LEN: usize = 16 * 1024 * 1024;

// ----------------------------------------------------------------- errors

/// Why a decode failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The input ended before the value was complete.
    Truncated,
    /// A tag, length or invariant check failed; the message names it.
    Malformed(&'static str),
    /// The frame header's magic bytes were wrong.
    BadMagic,
    /// The frame header carried an unsupported wire-format version.
    BadVersion(u8),
    /// A frame's length prefix exceeded [`MAX_FRAME_LEN`].
    FrameTooLarge(usize),
    /// A top-level value decoded successfully but bytes were left over.
    TrailingBytes(usize),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => write!(f, "input truncated"),
            WireError::Malformed(what) => write!(f, "malformed {what}"),
            WireError::BadMagic => write!(f, "bad frame magic"),
            WireError::BadVersion(v) => write!(f, "unsupported wire version {v}"),
            WireError::FrameTooLarge(n) => {
                write!(f, "frame body of {n} bytes exceeds cap {MAX_FRAME_LEN}")
            }
            WireError::TrailingBytes(n) => write!(f, "{n} trailing bytes after value"),
        }
    }
}

impl std::error::Error for WireError {}

// ----------------------------------------------------------------- writer

/// Byte sink for [`WireEncode`]. In *counting* mode it only tallies the
/// length, so the exact encoded size of a message costs one allocation-free
/// traversal — cheap enough for the simulator's per-send accounting.
#[derive(Debug)]
pub struct WireWriter<'a> {
    buf: Option<&'a mut Vec<u8>>,
    written: usize,
}

impl<'a> WireWriter<'a> {
    /// A writer appending to `buf`.
    pub fn to_buf(buf: &'a mut Vec<u8>) -> Self {
        WireWriter {
            buf: Some(buf),
            written: 0,
        }
    }

    /// A counting writer: discards bytes, remembers only the length.
    pub fn counting() -> WireWriter<'static> {
        WireWriter {
            buf: None,
            written: 0,
        }
    }

    /// Bytes written (or counted) so far.
    pub fn written(&self) -> usize {
        self.written
    }

    /// Appends raw bytes.
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        if let Some(buf) = self.buf.as_deref_mut() {
            buf.extend_from_slice(bytes);
        }
        self.written += bytes.len();
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.put_bytes(&[v]);
    }

    /// Appends a little-endian `u16`.
    pub fn put_u16(&mut self, v: u16) {
        self.put_bytes(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.put_bytes(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.put_bytes(&v.to_le_bytes());
    }

    /// Appends a boolean as `0`/`1`.
    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(v as u8);
    }

    /// Appends a sequence length prefix.
    ///
    /// # Panics
    ///
    /// Panics if `len` does not fit a `u32`; no protocol collection comes
    /// within orders of magnitude of that.
    pub fn put_len(&mut self, len: usize) {
        self.put_u32(u32::try_from(len).expect("sequence length fits u32"));
    }

    /// Appends a length-prefixed sequence of encodable items.
    pub fn put_seq<T: WireEncode>(&mut self, items: &[T]) {
        self.put_len(items.len());
        for item in items {
            item.wire_encode(self);
        }
    }
}

// ----------------------------------------------------------------- reader

/// Bounds-checked cursor over an encoded byte slice.
#[derive(Debug)]
pub struct WireReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    /// A reader over `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        WireReader { bytes, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    /// Takes `n` raw bytes.
    pub fn take_bytes(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated);
        }
        let out = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Takes one byte.
    pub fn take_u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take_bytes(1)?[0])
    }

    /// Takes a little-endian `u16`.
    pub fn take_u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(self.take_bytes(2)?.try_into().unwrap()))
    }

    /// Takes a little-endian `u32`.
    pub fn take_u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take_bytes(4)?.try_into().unwrap()))
    }

    /// Takes a little-endian `u64`.
    pub fn take_u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take_bytes(8)?.try_into().unwrap()))
    }

    /// Takes a boolean, rejecting anything but `0`/`1`.
    pub fn take_bool(&mut self) -> Result<bool, WireError> {
        match self.take_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(WireError::Malformed("bool")),
        }
    }

    /// Takes a sequence length prefix, validating it against the bytes that
    /// actually remain (`min_elem_size` bytes per element) *before* the
    /// caller allocates — an oversized length prefix fails cleanly instead
    /// of reserving unbounded memory.
    pub fn take_len(&mut self, min_elem_size: usize) -> Result<usize, WireError> {
        let len = self.take_u32()? as usize;
        if len.saturating_mul(min_elem_size.max(1)) > self.remaining() {
            return Err(WireError::Malformed("sequence length exceeds input"));
        }
        Ok(len)
    }

    /// Takes a length-prefixed sequence of decodable items, assuming each
    /// item occupies at least `min_elem_size` bytes.
    pub fn take_seq<T: WireDecode>(&mut self, min_elem_size: usize) -> Result<Vec<T>, WireError> {
        let len = self.take_len(min_elem_size)?;
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(T::wire_decode(self)?);
        }
        Ok(out)
    }

    /// The not-yet-consumed tail of the input. Decoders that need the raw
    /// bytes a sub-value occupied (e.g. to key a verified-digest cache) take
    /// this before the sub-decode and slice it by how much `remaining()`
    /// shrank.
    pub fn rest(&self) -> &'a [u8] {
        &self.bytes[self.pos..]
    }

    /// Succeeds only when every input byte was consumed. Top-level decoders
    /// call this so trailing garbage is an error, not silently ignored.
    pub fn finish(self) -> Result<(), WireError> {
        match self.remaining() {
            0 => Ok(()),
            n => Err(WireError::TrailingBytes(n)),
        }
    }
}

// ----------------------------------------------------------------- traits

/// Types with a binary wire encoding.
pub trait WireEncode {
    /// Appends this value's encoding to the writer.
    fn wire_encode(&self, w: &mut WireWriter<'_>);
}

/// Types that can be decoded from their binary wire encoding.
pub trait WireDecode: Sized {
    /// Decodes one value, advancing the reader past it.
    fn wire_decode(r: &mut WireReader<'_>) -> Result<Self, WireError>;
}

/// Hooks for **encode-once fan-out**: a runtime that frames messages onto
/// sockets asks the message for a logical identity and a memoized frame, so
/// one logical message fanned out to many recipients is encoded exactly
/// once and the frame bytes are shared (`Arc<[u8]>`) across every per-peer
/// queue.
///
/// The default implementations opt out of both (every copy is encoded
/// independently), which is always correct; messages backed by shared
/// allocations (e.g. `Arc`-wrapped envelopes) override them.
pub trait FrameMemo {
    /// Identity of the logical message this value is a fan-out copy of, or
    /// `None` when copies carry no shared identity. Pointer-derived
    /// identities are only stable while the message is alive, so callers
    /// must scope any identity-keyed memo to a window in which all compared
    /// messages coexist (e.g. one effect batch).
    fn fanout_identity(&self) -> Option<usize> {
        None
    }

    /// A previously memoized framed encoding of this message, if any. The
    /// bytes must be exactly what the runtime's framing produced for this
    /// message — byte-identical to a fresh encoding.
    fn cached_frame(&self) -> Option<Arc<[u8]>> {
        None
    }

    /// Offers the framed encoding for memoization. Callers must pass the
    /// complete frame exactly as produced for this message; implementations
    /// may ignore it (the default) or store it for [`FrameMemo::cached_frame`].
    fn memoize_frame(&self, _frame: &Arc<[u8]>) {}
}

impl FrameMemo for u64 {}
impl FrameMemo for Vec<u8> {}

/// Exact encoded size of a value: one counting traversal, no allocation.
pub fn wire_len<T: WireEncode + ?Sized>(value: &T) -> usize {
    let mut w = WireWriter::counting();
    value.wire_encode(&mut w);
    w.written()
}

/// Encodes a value into a fresh buffer.
pub fn encode_to_vec<T: WireEncode + ?Sized>(value: &T) -> Vec<u8> {
    let mut buf = Vec::with_capacity(wire_len(value));
    let mut w = WireWriter::to_buf(&mut buf);
    value.wire_encode(&mut w);
    buf
}

/// Decodes a value that must span the entire input (trailing bytes error).
pub fn decode_exact<T: WireDecode>(bytes: &[u8]) -> Result<T, WireError> {
    let mut r = WireReader::new(bytes);
    let value = T::wire_decode(&mut r)?;
    r.finish()?;
    Ok(value)
}

// ------------------------------------------------- codec impls (primitives)

impl WireEncode for u64 {
    fn wire_encode(&self, w: &mut WireWriter<'_>) {
        w.put_u64(*self);
    }
}

impl WireDecode for u64 {
    fn wire_decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        r.take_u64()
    }
}

impl WireEncode for Vec<u8> {
    fn wire_encode(&self, w: &mut WireWriter<'_>) {
        w.put_len(self.len());
        w.put_bytes(self);
    }
}

impl WireDecode for Vec<u8> {
    fn wire_decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let len = r.take_len(1)?;
        Ok(r.take_bytes(len)?.to_vec())
    }
}

impl WireEncode for Arc<[u8]> {
    fn wire_encode(&self, w: &mut WireWriter<'_>) {
        w.put_len(self.len());
        w.put_bytes(self);
    }
}

impl WireDecode for Arc<[u8]> {
    fn wire_decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let len = r.take_len(1)?;
        Ok(Arc::from(r.take_bytes(len)?))
    }
}

impl<T: WireEncode> WireEncode for Arc<T> {
    fn wire_encode(&self, w: &mut WireWriter<'_>) {
        (**self).wire_encode(w);
    }
}

impl<T: WireDecode> WireDecode for Arc<T> {
    fn wire_decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        T::wire_decode(r).map(Arc::new)
    }
}

impl<A: WireEncode, B: WireEncode> WireEncode for (A, B) {
    fn wire_encode(&self, w: &mut WireWriter<'_>) {
        self.0.wire_encode(w);
        self.1.wire_encode(w);
    }
}

impl<A: WireDecode, B: WireDecode> WireDecode for (A, B) {
    fn wire_decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok((A::wire_decode(r)?, B::wire_decode(r)?))
    }
}

impl<T: WireEncode> WireEncode for Option<T> {
    fn wire_encode(&self, w: &mut WireWriter<'_>) {
        match self {
            None => w.put_u8(0),
            Some(v) => {
                w.put_u8(1);
                v.wire_encode(w);
            }
        }
    }
}

impl<T: WireDecode> WireDecode for Option<T> {
    fn wire_decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        match r.take_u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::wire_decode(r)?)),
            _ => Err(WireError::Malformed("option tag")),
        }
    }
}

// ------------------------------------------------------ codec impls (ids)

impl WireEncode for NodeId {
    fn wire_encode(&self, w: &mut WireWriter<'_>) {
        w.put_u64(self.raw());
    }
}

impl WireDecode for NodeId {
    fn wire_decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        r.take_u64().map(NodeId::new)
    }
}

impl WireEncode for VgroupId {
    fn wire_encode(&self, w: &mut WireWriter<'_>) {
        w.put_u64(self.raw());
    }
}

impl WireDecode for VgroupId {
    fn wire_decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        r.take_u64().map(VgroupId::new)
    }
}

impl WireEncode for BroadcastId {
    fn wire_encode(&self, w: &mut WireWriter<'_>) {
        self.origin.wire_encode(w);
        w.put_u64(self.seq);
    }
}

impl WireDecode for BroadcastId {
    fn wire_decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(BroadcastId::new(NodeId::wire_decode(r)?, r.take_u64()?))
    }
}

impl WireEncode for WalkId {
    fn wire_encode(&self, w: &mut WireWriter<'_>) {
        self.origin.wire_encode(w);
        w.put_u64(self.seq);
    }
}

impl WireDecode for WalkId {
    fn wire_decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(WalkId::new(VgroupId::wire_decode(r)?, r.take_u64()?))
    }
}

impl WireEncode for NetAddr {
    fn wire_encode(&self, w: &mut WireWriter<'_>) {
        w.put_bytes(&self.ip);
        w.put_u16(self.port);
    }
}

impl WireDecode for NetAddr {
    fn wire_decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let ip: [u8; 4] = r.take_bytes(4)?.try_into().unwrap();
        Ok(NetAddr::new(ip, r.take_u16()?))
    }
}

impl WireEncode for NodeIdentity {
    fn wire_encode(&self, w: &mut WireWriter<'_>) {
        self.id.wire_encode(w);
        self.addr.wire_encode(w);
    }
}

impl WireDecode for NodeIdentity {
    fn wire_decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(NodeIdentity::new(
            NodeId::wire_decode(r)?,
            NetAddr::wire_decode(r)?,
        ))
    }
}

impl WireEncode for Composition {
    fn wire_encode(&self, w: &mut WireWriter<'_>) {
        w.put_len(self.len());
        for member in self.iter() {
            w.put_u64(member.raw());
        }
    }
}

impl WireDecode for Composition {
    fn wire_decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let len = r.take_len(8)?;
        let mut members = Vec::with_capacity(len);
        for _ in 0..len {
            members.push(NodeId::new(r.take_u64()?));
        }
        // `from_members` sorts and deduplicates: the boundary canonicalises,
        // so a hostile encoding cannot smuggle in a duplicate-bearing set.
        Ok(Composition::from_members(members))
    }
}

/// Types that know their approximate encoded size in bytes.
pub trait WireSize {
    /// Approximate number of bytes this value occupies on the wire.
    fn wire_size(&self) -> usize;
}

impl WireSize for NodeId {
    fn wire_size(&self) -> usize {
        8
    }
}

impl WireSize for VgroupId {
    fn wire_size(&self) -> usize {
        8
    }
}

impl WireSize for BroadcastId {
    fn wire_size(&self) -> usize {
        16
    }
}

impl WireSize for WalkId {
    fn wire_size(&self) -> usize {
        16
    }
}

impl WireSize for NodeIdentity {
    fn wire_size(&self) -> usize {
        8 + 6 // id + ip:port
    }
}

impl WireSize for Composition {
    fn wire_size(&self) -> usize {
        4 + self.len() * 8
    }
}

impl WireSize for u64 {
    fn wire_size(&self) -> usize {
        8
    }
}

impl WireSize for u32 {
    fn wire_size(&self) -> usize {
        4
    }
}

impl WireSize for bool {
    fn wire_size(&self) -> usize {
        1
    }
}

impl<T: WireSize> WireSize for Option<T> {
    fn wire_size(&self) -> usize {
        1 + self.as_ref().map_or(0, WireSize::wire_size)
    }
}

impl<T: WireSize> WireSize for Vec<T> {
    fn wire_size(&self) -> usize {
        4 + self.iter().map(WireSize::wire_size).sum::<usize>()
    }
}

impl<T: WireSize> WireSize for &T {
    fn wire_size(&self) -> usize {
        (*self).wire_size()
    }
}

impl WireSize for Vec<u8> {
    fn wire_size(&self) -> usize {
        4 + self.len()
    }
}

impl WireSize for String {
    fn wire_size(&self) -> usize {
        4 + self.len()
    }
}

impl<A: WireSize, B: WireSize> WireSize for (A, B) {
    fn wire_size(&self) -> usize {
        self.0.wire_size() + self.1.wire_size()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_sizes() {
        assert_eq!(NodeId::new(1).wire_size(), 8);
        assert_eq!(VgroupId::new(1).wire_size(), 8);
        assert_eq!(BroadcastId::new(NodeId::new(1), 2).wire_size(), 16);
        assert_eq!(7u64.wire_size(), 8);
        assert_eq!(7u32.wire_size(), 4);
        assert_eq!(true.wire_size(), 1);
    }

    #[test]
    fn container_sizes() {
        let comp: Composition = (0..10).map(NodeId::new).collect();
        assert_eq!(comp.wire_size(), 4 + 80);
        let v: Vec<NodeId> = (0..3).map(NodeId::new).collect();
        assert_eq!(v.wire_size(), 4 + 24);
        let bytes: Vec<u8> = vec![0u8; 100];
        assert_eq!(bytes.wire_size(), 104);
        assert_eq!("hello".to_string().wire_size(), 9);
        assert_eq!(Some(NodeId::new(1)).wire_size(), 9);
        assert_eq!(Option::<NodeId>::None.wire_size(), 1);
        assert_eq!((NodeId::new(1), 4u32).wire_size(), 12);
    }

    #[test]
    fn reference_forwarding() {
        let id = NodeId::new(9);
        // Exercise the blanket `impl WireSize for &T` explicitly.
        assert_eq!(<&NodeId as WireSize>::wire_size(&&id), id.wire_size());
    }
}
