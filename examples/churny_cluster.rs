//! A dynamic, hostile deployment: a standing cluster with Byzantine
//! (heartbeat-only) members and continuous churn, still delivering
//! broadcasts to every correct member.
//!
//! Run with: `cargo run --release --example churny_cluster`

use atum::core::CollectingApp;
use atum::sim::{run_broadcast_workload, run_churn, ClusterBuilder};
use atum::simnet::NetConfig;
use atum::types::{Duration, Params};

fn main() {
    let nodes = 40usize;
    let byzantine = 3usize;
    let params = Params::default()
        .with_round(Duration::from_millis(500))
        .with_group_bounds(3, 10)
        .with_overlay(3, 5)
        // Churny deployments need tight failure detection: heartbeat every
        // 5 s, accuse after 3 silent periods, so stranded or crashed members
        // are evicted (and re-welcomed, if recoverable) within ~20 s instead
        // of lingering for minutes with the paper's 60 s default.
        .with_failure_detection(Duration::from_secs(5), 3);
    let mut cluster = ClusterBuilder::new(nodes)
        .params(params)
        .net(NetConfig::lan())
        .seed(99)
        .byzantine(byzantine)
        .build(|_| CollectingApp::new());
    println!(
        "built a {nodes}-node system in {} vgroups with {byzantine} Byzantine members",
        cluster.directory.group_count()
    );

    // Phase 1: broadcasts under Byzantine presence.
    let report = run_broadcast_workload(
        &mut cluster,
        10,
        100,
        Duration::from_secs(1),
        Duration::from_secs(45),
        5,
    );
    println!(
        "broadcast phase: delivery ratio {:.3}, mean latency {:.2}s, mean hops {:.1}",
        report.delivery_ratio(),
        report.latencies.mean(),
        report.mean_hops
    );

    // Phase 2: churn — nodes leave and re-join continuously.
    let initial = cluster.member_count();
    let churn = run_churn(
        &mut cluster,
        2.0,
        Duration::from_secs(180),
        Duration::from_secs(5),
        17,
    );
    println!(
        "churn phase: {} cycles attempted, {} completed ({:.0}%), members {} -> {} (sustained: {})",
        churn.attempted,
        churn.completed,
        churn.completion_ratio() * 100.0,
        initial,
        churn.final_members,
        churn.sustained(initial)
    );
}
