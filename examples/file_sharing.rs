//! AShare: share a file, let the randomized replication feedback loop create
//! replicas, then read it back with parallel chunked pulls and integrity
//! checks.
//!
//! Run with: `cargo run --example file_sharing`

use atum::apps::{AShareApp, AShareConfig};
use atum::sim::ClusterBuilder;
use atum::simnet::NetConfig;
use atum::types::{Duration, NodeId, Params};

fn main() {
    let nodes = 12usize;
    let config = AShareConfig {
        rho: 4,
        chunks_per_file: 5,
        system_size: nodes,
        corrupt_replicas: false,
        participate_in_replication: true,
    };
    let params = Params::default()
        .with_round(Duration::from_millis(500))
        .with_group_bounds(2, 8)
        .with_overlay(2, 4);
    let mut cluster = ClusterBuilder::new(nodes)
        .params(params)
        .net(NetConfig::lan())
        .seed(11)
        .build(|_| AShareApp::new(config.clone()));

    // Node 0 shares a 20 MB file; the PUT broadcast spreads the metadata and
    // triggers the randomized replication loop.
    let owner = NodeId::new(0);
    cluster.sim.call(owner, |node, ctx| {
        node.app_call(ctx, |app, actx| {
            app.put("dataset.tar", 20 * 1024 * 1024, actx);
        });
    });
    cluster.sim.run_for(Duration::from_secs(120));

    // Inspect the replica population created by the feedback loop.
    let replicas = cluster
        .sim
        .node(owner)
        .unwrap()
        .app()
        .index()
        .get(owner, "dataset.tar")
        .map(|m| m.replicas.len())
        .unwrap_or(0);
    println!("replicas known to the owner after the feedback loop: {replicas}");

    // A node that does not store the file reads it back.
    let reader = cluster
        .sim
        .node_ids()
        .into_iter()
        .find(|id| {
            let app = cluster.sim.node(*id).unwrap().app();
            !app.stored_files()
                .contains(&(owner, "dataset.tar".to_string()))
        })
        .unwrap_or(NodeId::new(1));
    cluster.sim.call(reader, move |node, ctx| {
        node.app_call(ctx, |app, actx| {
            app.get(owner, "dataset.tar", true, actx);
        });
    });
    cluster.sim.run_for(Duration::from_secs(60));

    let outcomes = cluster
        .sim
        .node(reader)
        .unwrap()
        .app()
        .completed_gets()
        .to_vec();
    for o in &outcomes {
        println!(
            "reader {reader}: read {} ({} MB) in {:.2}s ({:.3} s/MB, {} retries)",
            o.name,
            o.size / (1024 * 1024),
            o.duration().as_secs_f64(),
            o.latency_per_mb(),
            o.retries
        );
    }
    // Search works from any node's local index.
    let hits = cluster.sim.node(reader).unwrap().app().search("dataset");
    println!("search for \"dataset\" found {} file(s)", hits.len());
}
