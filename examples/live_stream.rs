//! AStream: stream data from a source node to every other node — Atum
//! disseminates the per-chunk digests (tier one) while a forest-based
//! push–pull multicast moves the 1 MB/s data (tier two).
//!
//! Run with: `cargo run --example live_stream`

use atum::apps::astream::build_forest;
use atum::apps::{AStreamApp, AStreamConfig};
use atum::sim::ClusterBuilder;
use atum::simnet::NetConfig;
use atum::types::{Duration, GossipPolicy, NodeId, Params};

fn main() {
    let nodes = 20usize;
    let chunk_size = 1u32 << 20; // 1 MiB per second
    let chunks = 10u64;
    let params = Params::default()
        .with_round(Duration::from_millis(500))
        .with_group_bounds(2, 8)
        .with_overlay(2, 4)
        .with_gossip(GossipPolicy::Cycles(2));
    let mut cluster = ClusterBuilder::new(nodes)
        .params(params)
        .net(NetConfig::lan())
        .seed(21)
        .build(|_| AStreamApp::new(7, AStreamConfig::default()));

    // Build the dissemination forest from the vgroup structure.
    let groups: Vec<Vec<NodeId>> = cluster
        .directory
        .group_ids()
        .iter()
        .map(|g| cluster.directory.composition(*g).unwrap().iter().collect())
        .collect();
    let source = groups[0][0];
    for (node, cfg) in build_forest(&groups, source, chunk_size) {
        cluster.sim.call(node, move |n, ctx| {
            n.app_call(ctx, |app, _| app.set_config(cfg.clone()));
        });
    }
    cluster.sim.run_for(Duration::from_secs(1));

    // Stream ten seconds of video.
    let start = cluster.sim.now();
    for i in 0..chunks {
        let at = start + Duration::from_secs(i + 1);
        cluster.sim.call_at(at, source, move |n, ctx| {
            n.app_call(ctx, |app, actx| app.publish_chunk(i, actx));
        });
    }
    cluster.sim.run_for(Duration::from_secs(chunks + 45));

    println!("source: {source}");
    for id in cluster.initial_nodes.clone() {
        let app = cluster.sim.node(id).unwrap().app();
        println!(
            "node {id}: received {}/{} chunks, rejected {}, served {} pulls",
            app.received().len(),
            chunks,
            app.rejected(),
            app.served()
        );
    }
}
