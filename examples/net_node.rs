//! Cross-process interop proof for the TCP runtime: two OS processes, each
//! hosting one Atum node over real sockets, form a system and exchange an
//! application broadcast.
//!
//! ```text
//! # Terminal 1 — bootstrap a system and wait for a joiner:
//! cargo run --release --example net_node -- listen --id 0 --port 7100
//!
//! # Terminal 2 — join through the bootstrap node and broadcast:
//! cargo run --release --example net_node -- join --id 1 --port 7101 \
//!     --contact 0=127.0.0.1:7100
//!
//! # Or let the example drive both processes itself:
//! cargo run --release --example net_node -- demo
//! ```
//!
//! The listener process exits 0 once the joiner is a member of its vgroup
//! and the joiner's broadcast was delivered; the joiner exits 0 once it has
//! joined and delivered its own broadcast. `demo` spawns both roles as
//! child processes of the current binary (ephemeral ports, no
//! configuration) and fails loudly if either side stalls.

use atum::core::{AtumNode, CollectingApp};
use atum::crypto::KeyRegistry;
use atum::net::{AddressBook, NetRuntime, NodeHandle, RuntimeConfig};
use atum::types::{Duration, NodeId, Params};
use std::io::BufRead;
use std::net::SocketAddr;
use std::process::{Command, Stdio};
use std::time::{Duration as StdDuration, Instant as StdInstant};

fn params() -> Params {
    Params::default()
        .with_round(Duration::from_millis(100))
        .with_group_bounds(1, 8)
        .with_overlay(2, 4)
        .with_failure_detection(Duration::from_secs(5), 3)
}

/// Both processes must derive the same key material: the registry stands in
/// for the PKI the paper assumes is established out of band.
fn registry() -> std::sync::Arc<KeyRegistry> {
    let mut registry = KeyRegistry::new();
    for i in 0..8u64 {
        registry.register(NodeId::new(i), 7);
    }
    registry.shared()
}

struct Args {
    id: u64,
    port: u16,
    contacts: Vec<(NodeId, SocketAddr)>,
}

fn parse_args(mut rest: std::env::Args) -> Args {
    let mut args = Args {
        id: 0,
        port: 0,
        contacts: Vec::new(),
    };
    while let Some(flag) = rest.next() {
        let mut value = || rest.next().expect("flag value");
        match flag.as_str() {
            "--id" => args.id = value().parse().expect("numeric --id"),
            "--port" => args.port = value().parse().expect("numeric --port"),
            "--contact" => {
                let spec = value();
                let (id, addr) = spec.split_once('=').expect("--contact id=host:port");
                args.contacts.push((
                    NodeId::new(id.parse().expect("numeric contact id")),
                    addr.parse().expect("contact socket address"),
                ));
            }
            other => panic!("unknown flag {other}"),
        }
    }
    args
}

type Runtime = NetRuntime<atum::core::AtumMessage, AtumNode<CollectingApp>>;
type Handle = NodeHandle<atum::core::AtumMessage, AtumNode<CollectingApp>>;

fn spawn_node(args: &Args) -> (Runtime, Handle) {
    let book = AddressBook::new();
    for &(id, addr) in &args.contacts {
        book.register(id, addr);
    }
    let id = NodeId::new(args.id);
    let node = AtumNode::new(id, params(), registry(), CollectingApp::new());
    let bind: SocketAddr = format!("127.0.0.1:{}", args.port).parse().unwrap();
    let runtime = Runtime::bind(RuntimeConfig {
        listen: bind,
        book,
        ..RuntimeConfig::default()
    })
    .expect("bind listener");
    let handle = runtime.host(id, node);
    // The demo parent scrapes this line for the ephemeral port.
    println!("LISTENING {}", handle.addr());
    (runtime, handle)
}

fn wait_until(timeout: StdDuration, mut pred: impl FnMut() -> bool) -> bool {
    let deadline = StdInstant::now() + timeout;
    while StdInstant::now() < deadline {
        if pred() {
            return true;
        }
        std::thread::sleep(StdDuration::from_millis(100));
    }
    pred()
}

fn run_listen(args: Args) -> i32 {
    let (runtime, handle) = spawn_node(&args);
    handle.call(|n, ctx| n.bootstrap(ctx).expect("bootstrap"));
    println!("bootstrapped; waiting for a joiner and its broadcast");
    let ok = wait_until(StdDuration::from_secs(60), || {
        handle
            .with_node(|n| {
                let joined = n
                    .member()
                    .map(|m| m.composition.len() >= 2)
                    .unwrap_or(false);
                let delivered = !n.app().delivered_payloads().is_empty();
                joined && delivered
            })
            .unwrap_or(false)
    });
    let payloads = handle
        .with_node(|n| n.app().delivered_payloads().to_vec())
        .unwrap_or_default();
    for p in &payloads {
        println!("delivered: {}", String::from_utf8_lossy(p));
    }
    runtime.shutdown();
    if ok {
        println!("OK: joiner admitted and broadcast delivered across processes");
        0
    } else {
        eprintln!("FAIL: no joiner broadcast within the timeout");
        1
    }
}

fn run_join(args: Args) -> i32 {
    let contact = args.contacts.first().expect("join needs --contact").0;
    let (runtime, handle) = spawn_node(&args);
    handle.call(move |n, ctx| {
        n.join(contact, ctx).expect("join");
    });
    let joined = wait_until(StdDuration::from_secs(30), || {
        handle.with_node(|n| n.is_member()).unwrap_or(false)
    });
    if !joined {
        eprintln!("FAIL: never became a member");
        runtime.shutdown();
        return 1;
    }
    println!("joined; broadcasting");
    let hello = format!("hello-from-n{}", args.id).into_bytes();
    let sent = hello.clone();
    handle.call(move |n, ctx| {
        n.broadcast(sent, ctx).expect("broadcast");
    });
    // A broadcast is delivered locally once the vgroup decided it — which
    // over two processes means the SMR slot crossed the sockets and back.
    let ok = wait_until(StdDuration::from_secs(30), move || {
        handle
            .with_node({
                let hello = hello.clone();
                move |n| n.app().delivered_payloads().contains(&hello)
            })
            .unwrap_or(false)
    });
    runtime.shutdown();
    if ok {
        println!("OK: joined and delivered own broadcast via the vgroup");
        0
    } else {
        eprintln!("FAIL: broadcast never decided");
        1
    }
}

fn run_demo() -> i32 {
    let exe = std::env::current_exe().expect("current exe");
    let mut listener = Command::new(&exe)
        .args(["listen", "--id", "0", "--port", "0"])
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn listener process");
    // Scrape the listener's ephemeral address from its first output line.
    let mut lines =
        std::io::BufReader::new(listener.stdout.take().expect("listener stdout")).lines();
    let addr = loop {
        let line = lines
            .next()
            .expect("listener exited before announcing its port")
            .expect("read listener stdout");
        println!("[listener] {line}");
        if let Some(addr) = line.strip_prefix("LISTENING ") {
            break addr.to_string();
        }
    };

    let joiner = Command::new(&exe)
        .args([
            "join",
            "--id",
            "1",
            "--port",
            "0",
            "--contact",
            &format!("0={addr}"),
        ])
        .status()
        .expect("run joiner process");

    // Drain the listener's remaining output, then collect its verdict.
    for line in lines {
        println!("[listener] {}", line.expect("read listener stdout"));
    }
    let listener = listener.wait().expect("await listener process");
    let ok = joiner.success() && listener.success();
    println!(
        "demo: joiner {joiner}, listener {listener} => {}",
        if ok { "OK" } else { "FAIL" }
    );
    i32::from(!ok)
}

fn main() {
    let mut args = std::env::args();
    let _exe = args.next();
    let role = args.next().unwrap_or_else(|| "demo".to_string());
    let code = match role.as_str() {
        "listen" => run_listen(parse_args(args)),
        "join" => run_join(parse_args(args)),
        "demo" => run_demo(),
        other => {
            eprintln!("unknown role {other}; use listen | join | demo");
            2
        }
    };
    std::process::exit(code);
}
