//! ASub: a topic-based publish/subscribe service on top of Atum.
//!
//! A publisher creates a topic, subscribers join it through any existing
//! subscriber, and published events reach everyone — the pub/sub operations
//! map one-to-one onto the Atum API.
//!
//! Run with: `cargo run --example pubsub_topics`

use atum::apps::AsubNode;
use atum::crypto::KeyRegistry;
use atum::simnet::{NetConfig, Simulation};
use atum::types::{Duration, NodeId, Params, TopicId};

fn main() {
    let subscribers = 5u64;
    let topic = TopicId::new(99);
    let mut registry = KeyRegistry::new();
    for i in 0..subscribers {
        registry.register(NodeId::new(i), 7);
    }
    let registry = registry.shared();
    let params = Params::default()
        .with_round(Duration::from_millis(500))
        .with_group_bounds(1, 8);

    let mut sim: Simulation<_, AsubNode> = Simulation::new(NetConfig::lan(), 5);
    for i in 0..subscribers {
        sim.add_node(
            NodeId::new(i),
            AsubNode::new(NodeId::new(i), topic, params.clone(), registry.clone()),
        );
    }

    // Create the topic and subscribe everyone else.
    sim.call(NodeId::new(0), |n, ctx| n.create_topic(ctx).unwrap());
    sim.run_for(Duration::from_secs(2));
    for i in 1..subscribers {
        sim.call(NodeId::new(i), |n, ctx| {
            n.subscribe(NodeId::new(0), ctx).unwrap()
        });
        sim.run_for(Duration::from_secs(45));
    }

    // Publish two events from different subscribers.
    sim.call(NodeId::new(2), |n, ctx| {
        n.publish(b"market opened".to_vec(), ctx).unwrap()
    });
    sim.call(NodeId::new(4), |n, ctx| {
        n.publish(b"market closed".to_vec(), ctx).unwrap()
    });
    sim.run_for(Duration::from_secs(30));

    for i in 0..subscribers {
        let events = sim.node(NodeId::new(i)).unwrap().notifications();
        let texts: Vec<String> = events
            .iter()
            .map(|e| String::from_utf8_lossy(&e.data).to_string())
            .collect();
        println!("subscriber {i}: {} notifications {:?}", events.len(), texts);
    }
}
