//! Quickstart: the same Atum scenario on both runtimes.
//!
//! The harnesses share one vocabulary — `params`/`seed`/`group_size`/`build`
//! on the builders, `member_count`/`wait_for_members`/`broadcast_tracked` on
//! the clusters — so a scenario written against the deterministic simulator
//! ports to real TCP sockets by swapping `ClusterBuilder` for
//! `NetClusterBuilder`.
//!
//! Run with: `cargo run --example quickstart`

use atum::prelude::*;

fn scenario_params() -> Params {
    Params::default()
        .with_round(Duration::from_millis(250))
        .with_group_bounds(2, 8)
        .with_overlay(3, 5)
}

/// The scenario, simulated: deterministic, instant, reproducible.
fn simulated() {
    let mut cluster = ClusterBuilder::new(12)
        .params(scenario_params())
        .seed(2024)
        .build(|_| CollectingApp::new());
    let members = cluster.wait_for_members(12, Duration::from_secs(5));
    println!("[sim] members: {members}/12");

    let origin = NodeId::new(3);
    let id = cluster
        .broadcast_tracked(origin, b"hello, volatile groups!".to_vec())
        .expect("origin is a member");
    cluster.sim.run_for(Duration::from_secs(30));

    let delivered = cluster
        .correct_nodes()
        .into_iter()
        .filter(|&n| {
            cluster
                .sim
                .node(n)
                .map(|node| {
                    node.app()
                        .delivered_payloads()
                        .iter()
                        .any(|p| p == b"hello, volatile groups!")
                })
                .unwrap_or(false)
        })
        .count();
    println!("[sim] broadcast {id}: delivered on {delivered}/12 nodes");
}

/// The same scenario over real loopback TCP: every heartbeat, gossip round
/// and SMR step crosses actual sockets, all hosted on one reactor thread.
fn networked() {
    let cluster = NetClusterBuilder::new(12, 0)
        .params(scenario_params())
        .seed(2024)
        .build(|_| CollectingApp::new());
    let members = cluster.wait_for_members(12, std::time::Duration::from_secs(10));
    println!(
        "[net] members: {members}/12 (threads: {})",
        cluster.stats().threads
    );

    let origin = NodeId::new(3);
    let id = cluster
        .broadcast_tracked(origin, b"hello, volatile groups!".to_vec())
        .expect("origin is a member");
    let delivered = cluster.wait_for_nodes(12, std::time::Duration::from_secs(30), |n| {
        n.app()
            .delivered_payloads()
            .iter()
            .any(|p| p == b"hello, volatile groups!")
    });
    println!("[net] broadcast {id}: delivered on {delivered}/12 nodes");
    cluster.shutdown();
}

fn main() {
    simulated();
    networked();
}
