//! Quickstart: bootstrap a tiny Atum instance, let a few nodes join through a
//! contact node, broadcast a message and watch every node deliver it.
//!
//! Run with: `cargo run --example quickstart`

use atum::core::{AtumNode, CollectingApp};
use atum::crypto::KeyRegistry;
use atum::simnet::{NetConfig, Simulation};
use atum::types::{Duration, NodeId, Params};

fn main() {
    let nodes = 6u64;
    let mut registry = KeyRegistry::new();
    for i in 0..nodes {
        registry.register(NodeId::new(i), 2024);
    }
    let registry = registry.shared();
    let params = Params::default()
        .with_round(Duration::from_millis(500))
        .with_group_bounds(1, 8);

    let mut sim = Simulation::new(NetConfig::lan(), 1);
    for i in 0..nodes {
        let node = AtumNode::new(
            NodeId::new(i),
            params.clone(),
            registry.clone(),
            CollectingApp::new(),
        );
        sim.add_node(NodeId::new(i), node);
    }

    // Node 0 creates the instance; the others join through it.
    sim.call(NodeId::new(0), |n, ctx| n.bootstrap(ctx).unwrap());
    sim.run_for(Duration::from_secs(2));
    for i in 1..nodes {
        sim.call(NodeId::new(i), |n, ctx| {
            n.join(NodeId::new(0), ctx).unwrap()
        });
        sim.run_for(Duration::from_secs(45));
    }

    let members = (0..nodes)
        .filter(|&i| sim.node(NodeId::new(i)).unwrap().is_member())
        .count();
    println!("members after joins: {members}/{nodes}");

    sim.call(NodeId::new(3), |n, ctx| {
        n.broadcast(b"hello, volatile groups!".to_vec(), ctx)
            .unwrap();
    });
    sim.run_for(Duration::from_secs(30));

    for i in 0..nodes {
        let node = sim.node(NodeId::new(i)).unwrap();
        let got = node
            .app()
            .delivered_payloads()
            .iter()
            .any(|p| p == b"hello, volatile groups!");
        println!(
            "node {i}: member={} delivered_broadcast={} vgroup={:?}",
            node.is_member(),
            got,
            node.member().map(|m| m.vgroup)
        );
    }
}
