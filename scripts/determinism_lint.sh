#!/usr/bin/env bash
# Determinism lint for the protocol layers.
#
# The simulator promises bit-identical trajectories per seed (pinned by
# tests/fabric_equivalence.rs) and the model checker (crates/mcheck) relies
# on canonical, order-stable state renderings for visited-set dedup. Both
# break silently if protocol state lives in std's HashMap/HashSet, whose
# iteration order is randomized per process. The protocol layers — core,
# overlay, smr — therefore use BTreeMap/BTreeSet throughout.
#
# A use that provably never observes iteration order (pure keyed lookups)
# may be exempted by placing this marker on the offending line or the line
# directly above it:
#
#     // determinism-lint: allow (<why iteration order is never observed>)
#
# Run from anywhere; CI runs it as a build-test step.
set -euo pipefail
cd "$(dirname "$0")/.."

LAYERS=(crates/core/src crates/overlay/src crates/smr/src)
MARKER='determinism-lint: allow'

fail=0
while IFS=: read -r file line text; do
    [[ -z "${file:-}" ]] && continue
    if [[ "$text" == *"$MARKER"* ]]; then
        continue
    fi
    prev=""
    if (( line > 1 )); then
        prev=$(sed -n "$((line - 1))p" "$file")
    fi
    if [[ "$prev" == *"$MARKER"* ]]; then
        continue
    fi
    echo "determinism-lint: $file:$line: $text" >&2
    fail=1
done < <(grep -rn --include='*.rs' -E 'Hash(Map|Set)' "${LAYERS[@]}" || true)

if (( fail )); then
    cat >&2 <<'EOF'

Hash containers with randomized iteration order are forbidden in the
protocol layers (core, overlay, smr): use BTreeMap/BTreeSet, or annotate a
provably order-blind use with:  // determinism-lint: allow (<reason>)
EOF
    exit 1
fi
echo "determinism lint: clean (${LAYERS[*]})"
