//! Atum: scalable group communication using volatile groups.
//!
//! This is the facade crate of the workspace: it re-exports the public API of
//! every layer so applications can depend on a single crate.
//!
//! * [`core`] — the middleware itself: [`core::AtumNode`] with `bootstrap`,
//!   `join`, `leave`, `broadcast` and the `deliver`/`forward` callbacks.
//! * [`types`], [`crypto`], [`simnet`], [`smr`], [`overlay`] — the substrates
//!   (identifiers and configuration, digests and signatures, the
//!   discrete-event network simulator, the BFT replication engines, and the
//!   H-graph overlay).
//! * [`net`] — the real-socket TCP runtime: the same node state machines
//!   over loopback/LAN sockets, with the `NetCluster` harness.
//! * [`obs`] — observability: structured protocol-event tracing
//!   (`trace_event!`), the unified metrics registry, and the per-node
//!   flight recorder dumped on failures.
//! * [`apps`] — the three applications from the paper: ASub, AShare and
//!   AStream.
//! * [`edge`] — the hardened client gateway: circuit breakers, request
//!   deduplication, deadlines with retry, load shedding and graceful
//!   shutdown at the boundary where external clients meet the overlay.
//! * [`sim`] — the experiment harness (cluster construction, fault
//!   injection, workload drivers, metrics).
//!
//! See the `examples/` directory for runnable end-to-end scenarios and
//! `crates/bench/src/bin/` for the per-figure experiment binaries.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub use atum_apps as apps;
pub use atum_core as core;
pub use atum_crypto as crypto;
pub use atum_edge as edge;
pub use atum_net as net;
pub use atum_obs as obs;
pub use atum_overlay as overlay;
pub use atum_sim as sim;
pub use atum_simnet as simnet;
pub use atum_smr as smr;
pub use atum_types as types;

pub use atum_core::{AppCtx, Application, AtumNode, CollectingApp, Delivered};
pub use atum_types::{GossipPolicy, NodeId, Params, SmrMode};

/// One-stop imports for applications and harness code.
///
/// Brings in the node and application surface, the common configuration
/// types, and both cluster harnesses — the simulated
/// [`ClusterBuilder`](crate::sim::ClusterBuilder) and the socket-backed
/// [`NetClusterBuilder`](crate::net::NetClusterBuilder) share their builder
/// vocabulary (`params`/`seed`/`group_size`/`build`) and their cluster
/// vocabulary (`member_count`/`wait_for_members`/`broadcast_tracked`), so a
/// scenario written against one ports to the other by swapping the builder.
///
/// ```no_run
/// use atum::prelude::*;
///
/// let cluster = NetClusterBuilder::new(4, 0)
///     .params(Params::default().with_group_bounds(3, 10))
///     .seed(7)
///     .build(|_| CollectingApp::new());
/// cluster.broadcast(NodeId::new(0), b"hello".to_vec());
/// # cluster.shutdown();
/// ```
pub mod prelude {
    pub use atum_core::{AppCtx, Application, AtumMessage, AtumNode, CollectingApp, Delivered};
    pub use atum_crypto::KeyRegistry;
    pub use atum_net::{
        AddressBook, NetCluster, NetClusterBuilder, NetRuntime, NodeHandle, RuntimeConfig,
    };
    pub use atum_sim::{Cluster, ClusterBuilder};
    pub use atum_simnet::{Context, NetConfig, Node, Simulation};
    pub use atum_types::{Duration, GossipPolicy, Instant, NodeId, Params, SmrMode, VgroupId};
}
