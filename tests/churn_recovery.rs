//! Sustained-churn recovery: the headline liveness property of the Atum
//! evaluation (§6.1.2). A standing cluster endures continuous leave/re-join
//! cycles; at least 90 % of the cycles must complete, the run must be
//! deterministic for a fixed seed, and no ghost composition entries (nodes
//! listed by a vgroup they are not members of) may survive the final cycle.

use atum::core::CollectingApp;
use atum::sim::{run_churn, ChurnReport, ClusterBuilder};
use atum::simnet::NetConfig;
use atum::types::{Duration, Params};

const SEED: u64 = 23;

fn churn_params() -> Params {
    Params::default()
        .with_round(Duration::from_millis(500))
        .with_group_bounds(3, 10)
        .with_overlay(3, 5)
        // Tight failure detection, as in the churny_cluster example: churny
        // deployments must evict stranded entries within seconds.
        .with_failure_detection(Duration::from_secs(5), 3)
}

fn run_once() -> ChurnReport {
    let mut cluster = ClusterBuilder::new(30)
        .params(churn_params())
        .net(NetConfig::lan())
        .seed(SEED)
        .build(|_| CollectingApp::new());
    run_churn(
        &mut cluster,
        2.0,
        Duration::from_secs(180),
        Duration::from_secs(5),
        SEED,
    )
}

#[test]
fn sustained_churn_completes_ninety_percent_without_ghosts() {
    let report = run_once();
    assert!(
        report.attempted >= 5,
        "expected a meaningful number of cycles, got {}",
        report.attempted
    );
    assert!(
        report.completion_ratio() >= 0.9,
        "completion {}/{} ({:.0}%), stalls {:?}",
        report.completed,
        report.attempted,
        report.completion_ratio() * 100.0,
        report.stalls
    );
    assert_eq!(
        report.ghost_entries, 0,
        "ghost composition entries survived the final cycle"
    );
    // The audit's classification must be internally consistent, and — the
    // stronger, always-true form of the zero-ghosts bar — every ghost the
    // protocol *could* have healed must be healed. With no Byzantine
    // members in this run no vgroup can be wedged by construction, so both
    // counts are zero.
    assert_eq!(report.ghost_audit.entries, report.ghost_entries);
    assert_eq!(
        report.ghost_audit.healable(),
        0,
        "healable ghost entries survived: {:?}",
        report.ghost_audit
    );
    assert_eq!(report.ghost_audit.unhealable, 0);
    // Every completed cycle has a recovery latency sample and a consistent
    // per-cycle record.
    assert_eq!(report.rejoin_latencies.len(), report.completed);
    assert_eq!(report.cycles.len(), report.attempted);
    assert_eq!(
        report.stalls.total(),
        report.attempted - report.completed,
        "stall causes must account for every uncompleted cycle"
    );
    for cycle in &report.cycles {
        assert!(cycle.rejoin_at_secs > cycle.left_at_secs);
        if let Some(t) = cycle.completed_at_secs {
            assert!(t >= cycle.left_at_secs);
        }
    }
}

#[test]
fn churn_run_is_deterministic_for_a_fixed_seed() {
    let a = run_once();
    let b = run_once();
    assert_eq!(a.attempted, b.attempted);
    assert_eq!(a.completed, b.completed);
    assert_eq!(a.final_members, b.final_members);
    assert_eq!(a.ghost_entries, b.ghost_entries);
    assert_eq!(a.stalls, b.stalls);
    let key = |r: &ChurnReport| -> Vec<(u64, String, Option<String>)> {
        r.cycles
            .iter()
            .map(|c| {
                (
                    c.victim.raw(),
                    format!("{:.6}/{:.6}", c.left_at_secs, c.rejoin_at_secs),
                    c.completed_at_secs.map(|t| format!("{t:.6}")),
                )
            })
            .collect()
    };
    assert_eq!(key(&a), key(&b), "per-cycle records must be identical");
}
