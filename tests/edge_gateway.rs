//! Decode hardening at the gateway's client boundary.
//!
//! The node wire gets to assume its peers run this codebase; the edge
//! wire does not. These tests throw malformed headers, node-wire frame
//! kinds, oversized length prefixes, truncated bodies, random garbage and
//! slow-loris dribbles at a live gateway and assert the blast radius of
//! every violation is exactly one connection: the offender is closed and
//! counted, concurrent well-behaved clients never notice, and the
//! listener keeps accepting.

use atum::edge::client::request_frame;
use atum::edge::{
    EdgeBackend, EdgeBackendError, EdgeClient, EdgeConfig, EdgeGateway, EdgeOp, EdgeRequest,
    EdgeStatus,
};
use atum::types::wire::{FRAME_KIND_EDGE_REQUEST, FRAME_KIND_MESSAGE, FRAME_MAGIC, WIRE_VERSION};
use atum::types::NodeId;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A backend that always succeeds; these tests exercise the wire in
/// front of it, not the routing behind it.
#[derive(Debug)]
struct OkBackend;

impl EdgeBackend for OkBackend {
    fn nodes(&self) -> Vec<NodeId> {
        vec![NodeId::new(0)]
    }

    fn execute(
        &self,
        _node: NodeId,
        _op: &EdgeOp,
        _deadline: Instant,
    ) -> Result<Vec<u8>, EdgeBackendError> {
        Ok(Vec::new())
    }
}

fn start_gateway(cfg: EdgeConfig) -> EdgeGateway {
    EdgeGateway::start(cfg, Arc::new(OkBackend)).expect("gateway starts")
}

fn hardened_config() -> EdgeConfig {
    EdgeConfig {
        max_frame_len: 1024,
        idle_timeout: Duration::from_millis(300),
        ..EdgeConfig::default()
    }
}

fn health_request(seq: u64) -> EdgeRequest {
    EdgeRequest {
        seq,
        idempotency_key: None,
        deadline_ms: 0,
        op: EdgeOp::Health,
    }
}

/// Sends `bytes` on a fresh raw connection and returns once the gateway
/// closes it (read returns EOF). Panics if the connection survives the
/// timeout — a violation that does *not* close the connection is the bug.
fn expect_closed_after(addr: std::net::SocketAddr, bytes: &[u8]) {
    let mut stream = TcpStream::connect(addr).expect("raw connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream.write_all(bytes).expect("raw write");
    let mut sink = [0u8; 256];
    loop {
        match stream.read(&mut sink) {
            Ok(0) => return, // closed by the gateway
            Ok(_) => continue,
            Err(e) => panic!("gateway did not close the violating connection: {e}"),
        }
    }
}

/// A tiny deterministic generator so the garbage corpus is reproducible
/// without pulling an RNG crate into the facade's dev-dependencies.
struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }
}

#[test]
fn violations_close_only_the_offending_connection() {
    let gateway = start_gateway(hardened_config());
    let addr = gateway.local_addr();

    // A well-behaved bystander stays connected across every attack below.
    let mut bystander = EdgeClient::connect(addr, Duration::from_secs(10)).expect("bystander");
    assert_eq!(
        bystander.request(&health_request(1)).unwrap().status,
        EdgeStatus::Ok
    );

    let good = request_frame(&health_request(2));

    // Bad magic.
    let mut bad_magic = good.clone();
    bad_magic[0] = b'X';
    expect_closed_after(addr, &bad_magic);

    // Bad version.
    let mut bad_version = good.clone();
    bad_version[2] = WIRE_VERSION + 1;
    expect_closed_after(addr, &bad_version);

    // A *node-wire* frame kind: valid between nodes, a violation from a
    // client. The two wires share a header but not a vocabulary.
    let mut node_kind = good.clone();
    node_kind[3] = FRAME_KIND_MESSAGE;
    expect_closed_after(addr, &node_kind);

    // Length prefix far past `max_frame_len`: rejected from the header
    // alone, before any body allocation.
    let mut oversized = Vec::new();
    oversized.extend_from_slice(&FRAME_MAGIC);
    oversized.push(WIRE_VERSION);
    oversized.push(FRAME_KIND_EDGE_REQUEST);
    oversized.extend_from_slice(&u32::MAX.to_le_bytes());
    expect_closed_after(addr, &oversized);

    // A well-formed header whose body is garbage.
    let mut bad_body = Vec::new();
    bad_body.extend_from_slice(&FRAME_MAGIC);
    bad_body.push(WIRE_VERSION);
    bad_body.push(FRAME_KIND_EDGE_REQUEST);
    bad_body.extend_from_slice(&8u32.to_le_bytes());
    bad_body.extend_from_slice(&[0xFF; 8]);
    expect_closed_after(addr, &bad_body);

    let snapshot = gateway.snapshot();
    assert!(
        snapshot.frame_violations >= 5,
        "expected every violation counted, got {}",
        snapshot.frame_violations
    );

    // The bystander's connection and the listener both survived.
    assert_eq!(
        bystander.request(&health_request(3)).unwrap().status,
        EdgeStatus::Ok
    );
    let mut fresh = EdgeClient::connect(addr, Duration::from_secs(10)).expect("fresh client");
    assert_eq!(
        fresh.request(&health_request(4)).unwrap().status,
        EdgeStatus::Ok
    );
    gateway.shutdown();
}

#[test]
fn random_garbage_never_takes_the_gateway_down() {
    let gateway = start_gateway(hardened_config());
    let addr = gateway.local_addr();
    let good = request_frame(&health_request(9));
    let mut rng = XorShift(0xFEED_FACE_0BAD_F00D);

    for round in 0..64 {
        let bytes: Vec<u8> = if round % 2 == 0 {
            // Pure garbage of a pseudo-random length.
            let len = (rng.next() % 64 + 1) as usize;
            (0..len).map(|_| rng.next() as u8).collect()
        } else {
            // A known-good frame with one pseudo-random byte corrupted —
            // the adversary that almost speaks the protocol.
            let mut frame = good.clone();
            let idx = (rng.next() as usize) % frame.len();
            frame[idx] ^= (rng.next() as u8) | 1;
            frame
        };
        // Some corruptions (e.g. of the length prefix's low bytes, or of
        // body bytes that keep the request decodable) are not violations;
        // we only assert the gateway survives, whatever it decided.
        let mut stream = TcpStream::connect(addr).expect("raw connect");
        let _ = stream.write_all(&bytes);
        drop(stream);
    }

    // After the whole corpus: the listener accepts and answers.
    let mut client = EdgeClient::connect(addr, Duration::from_secs(10)).expect("client");
    assert_eq!(
        client.request(&health_request(10)).unwrap().status,
        EdgeStatus::Ok
    );
    gateway.shutdown();
}

#[test]
fn slow_loris_is_cut_off_without_collateral() {
    let gateway = start_gateway(hardened_config());
    let addr = gateway.local_addr();

    // The loris sends a valid header and then... nothing. It holds an
    // incomplete frame, so the idle reaper owes it a close.
    let good = request_frame(&health_request(20));
    let mut loris = TcpStream::connect(addr).expect("loris connect");
    loris
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    loris.write_all(&good[..6]).expect("partial write");

    // A healthy client keeps chatting while the loris dangles.
    let mut client = EdgeClient::connect(addr, Duration::from_secs(10)).expect("client");
    assert_eq!(
        client.request(&health_request(21)).unwrap().status,
        EdgeStatus::Ok
    );

    let mut sink = [0u8; 64];
    match loris.read(&mut sink) {
        Ok(0) => {}
        other => panic!("loris connection was not closed: {other:?}"),
    }
    let snapshot = gateway.snapshot();
    assert!(
        snapshot.idle_closed >= 1,
        "idle close not counted: {snapshot:?}"
    );

    // No collateral: the patient client still works.
    assert_eq!(
        client.request(&health_request(22)).unwrap().status,
        EdgeStatus::Ok
    );
    gateway.shutdown();
}
