//! End-to-end semantics of the gateway's robustness kit: circuit-breaker
//! state machine, idempotency-key deduplication, and graceful shutdown —
//! all observed from outside, through real sockets, against a scripted
//! backend whose failures the tests flip on and off.

use atum::edge::{
    BreakerConfig, EdgeBackend, EdgeBackendError, EdgeClient, EdgeConfig, EdgeGateway, EdgeOp,
    EdgeRequest, EdgeStatus,
};
use atum::types::NodeId;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// A backend the test scripts: `fail` turns every execution into
/// `Unavailable`, `delay_ms` stretches executions, and every *successful*
/// write is tallied per topic so duplicate applies are directly countable.
#[derive(Debug, Default)]
struct ScriptedBackend {
    fail: AtomicBool,
    delay_ms: AtomicU64,
    executions: AtomicU64,
    applies: Mutex<BTreeMap<u64, u64>>,
}

impl EdgeBackend for ScriptedBackend {
    fn nodes(&self) -> Vec<NodeId> {
        // One backend node: every request aims at the same breaker, which
        // makes the state machine's behaviour directly observable.
        vec![NodeId::new(0)]
    }

    fn execute(
        &self,
        _node: NodeId,
        op: &EdgeOp,
        _deadline: Instant,
    ) -> Result<Vec<u8>, EdgeBackendError> {
        self.executions.fetch_add(1, Ordering::SeqCst);
        let delay = self.delay_ms.load(Ordering::SeqCst);
        if delay > 0 {
            std::thread::sleep(Duration::from_millis(delay));
        }
        if self.fail.load(Ordering::SeqCst) {
            return Err(EdgeBackendError::Unavailable);
        }
        if let EdgeOp::Publish { topic, .. } = op {
            *self.applies.lock().unwrap().entry(*topic).or_insert(0) += 1;
        }
        Ok(Vec::new())
    }
}

fn config() -> EdgeConfig {
    EdgeConfig {
        // One attempt per request: with a single backend node, retries
        // would only multiply breaker bookkeeping per client request.
        max_attempts: 1,
        breaker: BreakerConfig {
            window: 8,
            failure_rate: 0.5,
            min_volume: 4,
            cooldown: Duration::from_millis(250),
            probe_quota: 1,
        },
        ..EdgeConfig::default()
    }
}

fn publish(seq: u64, topic: u64, key: Option<u64>) -> EdgeRequest {
    EdgeRequest {
        seq,
        idempotency_key: key,
        deadline_ms: 3_000,
        op: EdgeOp::Publish {
            topic,
            payload: vec![0x42; 8],
        },
    }
}

fn connect(gateway: &EdgeGateway) -> EdgeClient {
    EdgeClient::connect(gateway.local_addr(), Duration::from_secs(10)).expect("client connects")
}

/// Drives unavailable traffic until the breaker trips open.
fn trip_breaker(client: &mut EdgeClient, base_seq: u64) {
    for i in 0..6 {
        let resp = client
            .request(&publish(base_seq + i, 500 + i, None))
            .unwrap();
        assert_eq!(resp.status, EdgeStatus::Unavailable);
    }
}

#[test]
fn breaker_trips_probes_exactly_once_and_recloses_on_recovery() {
    let backend = Arc::new(ScriptedBackend::default());
    let gateway = EdgeGateway::start(config(), Arc::clone(&backend) as Arc<dyn EdgeBackend>)
        .expect("gateway starts");
    let mut client = connect(&gateway);

    backend.fail.store(true, Ordering::SeqCst);
    trip_breaker(&mut client, 1);
    let snap = gateway.snapshot();
    assert!(snap.breaker_opened >= 1, "breaker never opened: {snap:?}");
    assert_eq!(snap.breakers.get(&0).copied(), Some("open"));

    // While open (pre-cooldown) requests fail fast without reaching the
    // backend at all.
    let before = backend.executions.load(Ordering::SeqCst);
    let resp = client.request(&publish(20, 520, None)).unwrap();
    assert_eq!(resp.status, EdgeStatus::Unavailable);
    assert_eq!(backend.executions.load(Ordering::SeqCst), before);

    // Past the cooldown the breaker half-opens and admits *exactly* the
    // probe quota (1): stretch the probe and race a second request into
    // it — the straggler must be rejected without a backend execution.
    std::thread::sleep(Duration::from_millis(400));
    backend.delay_ms.store(300, Ordering::SeqCst);
    let before = backend.executions.load(Ordering::SeqCst);
    let mut prober = connect(&gateway);
    prober.send(&publish(30, 530, None)).unwrap();
    std::thread::sleep(Duration::from_millis(100)); // probe is now executing
    let resp = client.request(&publish(31, 531, None)).unwrap();
    assert_eq!(resp.status, EdgeStatus::Unavailable);
    assert_eq!(
        backend.executions.load(Ordering::SeqCst),
        before + 1,
        "half-open admitted more than the probe quota"
    );
    assert_eq!(prober.recv().unwrap().status, EdgeStatus::Unavailable);

    // Recovery: the backend heals, the next probe succeeds, the breaker
    // closes, and ordinary traffic flows again.
    backend.fail.store(false, Ordering::SeqCst);
    backend.delay_ms.store(0, Ordering::SeqCst);
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let resp = client.request(&publish(40, 540, None)).unwrap();
        if resp.status == EdgeStatus::Ok {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "breaker never closed after recovery"
        );
        std::thread::sleep(Duration::from_millis(100));
    }
    let snap = gateway.snapshot();
    assert_eq!(snap.breakers.get(&0).copied(), Some("closed"));
    assert!(
        snap.breaker_full_cycles >= 1,
        "no full open→half-open→closed cycle recorded: {snap:?}"
    );
    gateway.shutdown();
}

#[test]
fn idempotent_retry_straddling_a_breaker_trip_applies_once() {
    let backend = Arc::new(ScriptedBackend::default());
    let gateway = EdgeGateway::start(config(), Arc::clone(&backend) as Arc<dyn EdgeBackend>)
        .expect("gateway starts");
    let mut client = connect(&gateway);

    // The keyed write lands while the backend is healthy.
    let resp = client.request(&publish(1, 7, Some(7))).unwrap();
    assert_eq!(resp.status, EdgeStatus::Ok);

    // The backend dies and the breaker trips...
    backend.fail.store(true, Ordering::SeqCst);
    trip_breaker(&mut client, 10);

    // ...and the client, unsure whether its write landed, retries the
    // same key mid-trip. The dedup cache answers from memory: no backend
    // contact, no second apply.
    let resp = client.request(&publish(2, 7, Some(7))).unwrap();
    assert_eq!(resp.status, EdgeStatus::Duplicate);

    // Still duplicate after the breaker recovers.
    backend.fail.store(false, Ordering::SeqCst);
    std::thread::sleep(Duration::from_millis(400));
    let resp = client.request(&publish(3, 7, Some(7))).unwrap();
    assert_eq!(resp.status, EdgeStatus::Duplicate);
    assert_eq!(backend.applies.lock().unwrap().get(&7), Some(&1));

    // A keyed write that *failed* is not poisoned: the claim is released,
    // the retry executes for real, and only the third send deduplicates.
    backend.fail.store(true, Ordering::SeqCst);
    let resp = client.request(&publish(4, 9, Some(9))).unwrap();
    assert_eq!(resp.status, EdgeStatus::Unavailable);
    backend.fail.store(false, Ordering::SeqCst);
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let resp = client.request(&publish(5, 9, Some(9))).unwrap();
        match resp.status {
            EdgeStatus::Ok => break,
            // The breaker may still be open from the failure burst.
            EdgeStatus::Unavailable => {
                assert!(Instant::now() < deadline, "retry never landed");
                std::thread::sleep(Duration::from_millis(100));
            }
            other => panic!("unexpected status {other:?}"),
        }
    }
    let resp = client.request(&publish(6, 9, Some(9))).unwrap();
    assert_eq!(resp.status, EdgeStatus::Duplicate);
    assert_eq!(backend.applies.lock().unwrap().get(&9), Some(&1));
    assert_eq!(gateway.snapshot().dedup_hits, 3);
    gateway.shutdown();
}

#[test]
fn shutdown_flips_readiness_first_and_drains_in_flight_work() {
    let backend = Arc::new(ScriptedBackend::default());
    let gateway = EdgeGateway::start(config(), Arc::clone(&backend) as Arc<dyn EdgeBackend>)
        .expect("gateway starts");
    let addr = gateway.local_addr();
    let probe = gateway.probe();
    assert!(probe.live() && probe.ready());

    // Park a request inside the backend, then shut down around it.
    backend.delay_ms.store(400, Ordering::SeqCst);
    let mut client = connect(&gateway);
    client.send(&publish(77, 77, None)).unwrap();
    std::thread::sleep(Duration::from_millis(100)); // worker picked it up

    let report = gateway.shutdown();
    assert!(report.drained, "drain timed out: {report:?}");
    assert_eq!(report.abandoned, 0);

    // The in-flight request completed and its response was written before
    // the socket closed.
    let resp = client.recv().expect("drained response readable");
    assert_eq!(resp.seq, 77);
    assert_eq!(resp.status, EdgeStatus::Ok);
    assert_eq!(*backend.applies.lock().unwrap().get(&77).unwrap(), 1);

    // Probes report the shutdown and the listener is gone.
    assert!(!probe.ready() && !probe.live());
    assert!(
        EdgeClient::connect(addr, Duration::from_millis(500)).is_err(),
        "listener still accepting after shutdown"
    );
}
