//! Cross-crate integration tests: the full middleware stack (types, crypto,
//! SMR, overlay, core) driven through the simulator, exercising the paper's
//! guarantees end to end.

use atum::core::{AtumNode, CollectingApp};
use atum::crypto::KeyRegistry;
use atum::sim::{run_broadcast_workload, ClusterBuilder};
use atum::simnet::{NetConfig, Simulation};
use atum::types::{Duration, GossipPolicy, NodeId, Params, SmrMode};

fn fast_params() -> Params {
    Params::default()
        .with_round(Duration::from_millis(250))
        .with_group_bounds(2, 8)
        .with_overlay(3, 5)
}

#[test]
fn liveness_joining_nodes_eventually_deliver_broadcasts() {
    // The liveness property of §2: a node that requests to join eventually
    // starts delivering the messages broadcast in the system.
    let mut registry = KeyRegistry::new();
    for i in 0..4u64 {
        registry.register(NodeId::new(i), 1);
    }
    let registry = registry.shared();
    let params = fast_params().with_group_bounds(1, 8);
    let mut sim = Simulation::new(NetConfig::lan(), 42);
    for i in 0..4u64 {
        sim.add_node(
            NodeId::new(i),
            AtumNode::new(
                NodeId::new(i),
                params.clone(),
                registry.clone(),
                CollectingApp::new(),
            ),
        );
    }
    sim.call(NodeId::new(0), |n, ctx| n.bootstrap(ctx).unwrap());
    sim.run_for(Duration::from_secs(2));
    for i in 1..4u64 {
        sim.call(NodeId::new(i), |n, ctx| {
            n.join(NodeId::new(0), ctx).unwrap()
        });
        sim.run_for(Duration::from_secs(60));
    }
    sim.call(NodeId::new(1), |n, ctx| {
        n.broadcast(b"liveness".to_vec(), ctx).unwrap();
    });
    sim.run_for(Duration::from_secs(30));
    for i in 0..4u64 {
        let delivered = sim.node(NodeId::new(i)).unwrap().app().delivered_payloads();
        assert!(
            delivered.iter().any(|p| p == b"liveness"),
            "node {i} never delivered"
        );
    }
}

#[test]
fn safety_every_delivery_corresponds_to_a_real_broadcast() {
    // The safety property of §2: if a node delivers m from v, then v
    // previously broadcast m. With no Byzantine senders, every delivered
    // payload must be one of the payloads we actually broadcast, exactly
    // once per node.
    let mut cluster = ClusterBuilder::new(24)
        .params(fast_params())
        .seed(7)
        .build(|_| CollectingApp::new());
    let origin = cluster.initial_nodes[3];
    let payloads: Vec<Vec<u8>> = (0..3u8).map(|i| vec![i; 16]).collect();
    for p in &payloads {
        let p = p.clone();
        cluster.sim.call(origin, move |n, ctx| {
            n.broadcast(p, ctx).unwrap();
        });
    }
    cluster.sim.run_for(Duration::from_secs(60));
    for id in cluster.correct_nodes() {
        let delivered = cluster.sim.node(id).unwrap().app().delivered_payloads();
        for d in &delivered {
            assert!(payloads.contains(d), "node {id} delivered a forged payload");
        }
        for p in &payloads {
            assert_eq!(
                delivered.iter().filter(|d| *d == p).count(),
                1,
                "node {id} delivered a payload more than once"
            );
        }
    }
}

#[test]
fn byzantine_minority_does_not_block_dissemination() {
    // §6.1.3: with 5.8 % heartbeat-only Byzantine nodes scattered by the
    // builder, every correct node still delivers every broadcast.
    let n = 52usize;
    let byz = 3usize;
    let mut cluster = ClusterBuilder::new(n)
        .params(fast_params())
        .seed(13)
        .byzantine(byz)
        .build(|_| CollectingApp::new());
    let report = run_broadcast_workload(
        &mut cluster,
        5,
        100,
        Duration::from_millis(500),
        Duration::from_secs(45),
        3,
    );
    assert!(
        report.delivery_ratio() > 0.99,
        "delivery ratio {}",
        report.delivery_ratio()
    );
    assert!(report.latencies.mean() > 0.0);
}

#[test]
fn async_mode_works_over_wan() {
    let mut cluster = ClusterBuilder::new(20)
        .params(fast_params().with_smr(SmrMode::Asynchronous))
        .net(NetConfig::wan())
        .seed(17)
        .build(|_| CollectingApp::new());
    let report = run_broadcast_workload(
        &mut cluster,
        3,
        64,
        Duration::from_secs(1),
        Duration::from_secs(60),
        5,
    );
    assert!(
        report.delivery_ratio() > 0.99,
        "delivery ratio {}",
        report.delivery_ratio()
    );
}

#[test]
fn restricted_gossip_policy_still_delivers_everywhere() {
    // AStream-style forwarding along a single cycle trades latency for
    // throughput but must not lose deliveries (delivery is deterministic
    // along cycle 0).
    let mut cluster = ClusterBuilder::new(24)
        .params(fast_params().with_gossip(GossipPolicy::Cycles(1)))
        .seed(23)
        .build(|_| CollectingApp::new());
    let report = run_broadcast_workload(
        &mut cluster,
        3,
        100,
        Duration::from_secs(1),
        Duration::from_secs(60),
        7,
    );
    assert!(
        report.delivery_ratio() > 0.99,
        "delivery ratio {}",
        report.delivery_ratio()
    );
}
