//! Fixed-seed equivalence: the zero-copy message fabric (structural digests,
//! Arc-shared envelopes, engine scratch buffers) is a *performance* change —
//! for a fixed seed the protocol-level outcomes of the churn and growth
//! drivers must stay pinned. These golden values were captured when the
//! fabric landed; a future change that shifts them is either a deliberate
//! protocol change (update the goldens and say so in the commit) or an
//! accidental trajectory change (a bug — e.g. a digest encoding that lost
//! injectivity, a hash-map iteration order leaking into behaviour).

use atum::core::CollectingApp;
use atum::sim::{run_churn, run_growth, ChurnReport, ClusterBuilder, GrowthReport};
use atum::simnet::NetConfig;
use atum::types::{Duration, Params};

fn churn_once() -> ChurnReport {
    // The bench_churn reduced configuration minus the Byzantine members
    // (whose heartbeat-only behaviour can legitimately push a small vgroup
    // past its fault bound, which is a property of the fault model rather
    // than of the fabric this test pins).
    let params = Params::default()
        .with_round(Duration::from_millis(500))
        .with_group_bounds(3, 10)
        .with_overlay(3, 5)
        .with_failure_detection(Duration::from_secs(5), 3);
    let mut cluster = ClusterBuilder::new(40)
        .params(params)
        .net(NetConfig::lan())
        .seed(99)
        .build(|_| CollectingApp::new());
    run_churn(
        &mut cluster,
        2.0,
        Duration::from_secs(120),
        Duration::from_secs(5),
        17,
    )
}

fn growth_once() -> GrowthReport {
    run_growth(
        Params::default()
            .with_round(Duration::from_millis(250))
            .with_group_bounds(1, 6)
            .with_overlay(2, 4),
        NetConfig::lan(),
        19,
        14,
        0.5,
        Duration::from_secs(1800),
    )
}

#[test]
fn churn_metrics_are_pinned_for_fixed_seed() {
    let report = churn_once();
    let summary = (
        report.attempted,
        report.completed,
        report.final_members,
        report.ghost_entries,
    );
    assert_eq!(
        summary,
        (4, 4, 40, 0),
        "churn protocol metrics moved for a fixed seed: {summary:?}"
    );
    // And the run is bit-stable within the process: same seed, same cycles.
    let again = churn_once();
    assert_eq!(report.attempted, again.attempted);
    assert_eq!(report.completed, again.completed);
    assert_eq!(report.final_members, again.final_members);
    assert_eq!(report.events_processed, again.events_processed);
    let times = |r: &ChurnReport| -> Vec<(u64, String)> {
        r.cycles
            .iter()
            .map(|c| {
                (
                    c.victim.raw(),
                    format!(
                        "{:.6}/{:.6}/{:?}",
                        c.left_at_secs, c.rejoin_at_secs, c.completed_at_secs
                    ),
                )
            })
            .collect()
    };
    assert_eq!(times(&report), times(&again));
}

#[test]
fn growth_metrics_are_pinned_for_fixed_seed() {
    let report = growth_once();
    assert!(report.reached_target, "growth must reach its target");
    let summary = (
        report.size_over_time.last().map(|&(_, n)| n).unwrap_or(0),
        report.elapsed_secs as u64,
        report.exchanges_completed,
        report.exchanges_suppressed,
    );
    // Re-baselined in the atum-net PR: the composition anti-entropy
    // (periodic `CompositionUpdate`s + correspondent back-links, added to
    // heal the stale-addressing gossip starvation the loopback TCP test
    // exposed) is a deliberate protocol change; it shifts shuffle-walk
    // trajectories, which shows up here as more suppressed exchanges
    // (28 → 34) while reach, time-to-target and completions are unchanged.
    assert_eq!(
        summary,
        (14, 141, 5, 34),
        "growth protocol metrics moved for a fixed seed: {summary:?}"
    );
    let again = growth_once();
    assert_eq!(report.size_over_time, again.size_over_time);
    assert_eq!(report.events_processed, again.events_processed);
}
