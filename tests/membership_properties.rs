//! Property-based and invariant tests across crates: quorum arithmetic,
//! overlay surgery, walk uniformity and collector behaviour under arbitrary
//! inputs.

use atum::crypto::Digest;
use atum::overlay::{GroupMessageCollector, HGraph, VgroupDirectory};
use atum::types::{Composition, NodeId, SmrMode, VgroupId};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Synchronous and asynchronous fault bounds never exceed the composition
    /// size and satisfy the classic inequalities n > 2f (sync) and n > 3f
    /// (async).
    #[test]
    fn fault_bounds_respect_quorum_inequalities(size in 1usize..200) {
        let comp: Composition = (0..size as u64).map(NodeId::new).collect();
        let f_sync = comp.max_faults(SmrMode::Synchronous);
        let f_async = comp.max_faults(SmrMode::Asynchronous);
        prop_assert!(size > 2 * f_sync);
        prop_assert!(size > 3 * f_async);
        prop_assert!(f_async <= f_sync);
        prop_assert!(comp.majority() > size / 2);
        prop_assert!(comp.majority() <= size);
    }

    /// Splitting a composition by any permutation yields two disjoint halves
    /// that cover the original and differ in size by at most one.
    #[test]
    fn split_partitions_cleanly(size in 2usize..64, seed in 0u64..1000) {
        let comp: Composition = (0..size as u64).map(NodeId::new).collect();
        let mut order: Vec<usize> = (0..size).collect();
        use rand::seq::SliceRandom;
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        order.shuffle(&mut rng);
        let (a, b) = comp.split_by_order(&order);
        prop_assert_eq!(a.union(&b), comp);
        prop_assert!(a.intersection(&b).is_empty());
        prop_assert!(a.len() >= b.len());
        prop_assert!(a.len() - b.len() <= 1);
    }

    /// H-graph surgery (insert then remove) preserves the structural
    /// invariants and returns to the original vertex set.
    #[test]
    fn hgraph_surgery_preserves_invariants(
        vertices in 2usize..80,
        hc in 1u8..8,
        seed in 0u64..1000,
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let ids: Vec<VgroupId> = (0..vertices as u64).map(VgroupId::new).collect();
        let mut graph = HGraph::random(&ids, hc, &mut rng);
        prop_assert!(graph.check_invariants().is_ok());
        prop_assert!(graph.is_connected());

        let new = VgroupId::new(10_000);
        let anchors: Vec<VgroupId> = (0..hc as usize)
            .map(|c| graph.successor(c, ids[0]).unwrap())
            .collect();
        graph.insert(new, &anchors);
        prop_assert!(graph.check_invariants().is_ok());
        prop_assert_eq!(graph.vertex_count(), vertices + 1);

        prop_assert!(graph.remove(new));
        prop_assert!(graph.check_invariants().is_ok());
        prop_assert_eq!(graph.vertices(), ids);
    }

    /// The group-message collector accepts exactly once regardless of the
    /// order in which copies arrive, and never accepts without a majority.
    #[test]
    fn collector_accepts_exactly_once(
        group_size in 1u64..30,
        senders in proptest::collection::vec(0u64..30, 1..120),
    ) {
        let composition: Composition = (0..group_size).map(NodeId::new).collect();
        let mut collector = GroupMessageCollector::new(16);
        let digest = Digest::of(b"payload");
        let mut accepted = 0;
        let mut distinct_members = std::collections::BTreeSet::new();
        for s in senders {
            let sender = NodeId::new(s);
            if composition.contains(sender) {
                distinct_members.insert(sender);
            }
            if collector.observe(VgroupId::new(1), &composition, sender, digest, true) {
                accepted += 1;
                prop_assert!(distinct_members.len() >= composition.majority());
            }
        }
        prop_assert!(accepted <= 1);
        if distinct_members.len() >= composition.majority() {
            prop_assert_eq!(accepted, 1);
        }
    }

    /// Partitioning nodes into vgroups always satisfies the directory
    /// invariants and produces sizes within one of each other.
    #[test]
    fn directory_partition_is_balanced(nodes in 1usize..400, target in 1usize..30, seed in 0u64..100) {
        let ids: Vec<NodeId> = (0..nodes as u64).map(NodeId::new).collect();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let dir = VgroupDirectory::partition(&ids, target, &mut rng);
        prop_assert!(dir.check_invariants().is_ok());
        prop_assert_eq!(dir.node_count(), nodes);
        let sizes = dir.sizes();
        let min = sizes.iter().min().copied().unwrap_or(0);
        let max = sizes.iter().max().copied().unwrap_or(0);
        prop_assert!(max - min <= 1);
    }
}

#[test]
fn recommended_overlay_parameters_sample_uniformly() {
    // The guideline of Figure 4, checked end to end: walks of the
    // recommended length on the recommended density pass the χ² test.
    use atum::sim::is_uniform_99;
    for vgroups in [32usize, 128] {
        let entry = atum::types::recommended_params(vgroups);
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let ids: Vec<VgroupId> = (0..vgroups as u64).map(VgroupId::new).collect();
        let graph = HGraph::random(&ids, entry.hc, &mut rng);
        let hits = atum::overlay::simulate_walk_hits(
            &graph,
            VgroupId::new(0),
            entry.rwl,
            40 * vgroups,
            &mut rng,
        );
        let counts: Vec<u64> = hits.values().copied().collect();
        assert!(
            is_uniform_99(&counts),
            "recommended rwl {} / hc {} not uniform for {vgroups} vgroups",
            entry.rwl,
            entry.hc
        );
    }
}
