//! Property-based and invariant tests across crates: quorum arithmetic,
//! overlay surgery, walk uniformity and collector behaviour under arbitrary
//! inputs.

use atum::crypto::Digest;
use atum::overlay::{GroupMessageCollector, HGraph, VgroupDirectory};
use atum::types::{Composition, NodeId, SmrMode, VgroupId};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Synchronous and asynchronous fault bounds never exceed the composition
    /// size and satisfy the classic inequalities n > 2f (sync) and n > 3f
    /// (async).
    #[test]
    fn fault_bounds_respect_quorum_inequalities(size in 1usize..200) {
        let comp: Composition = (0..size as u64).map(NodeId::new).collect();
        let f_sync = comp.max_faults(SmrMode::Synchronous);
        let f_async = comp.max_faults(SmrMode::Asynchronous);
        prop_assert!(size > 2 * f_sync);
        prop_assert!(size > 3 * f_async);
        prop_assert!(f_async <= f_sync);
        prop_assert!(comp.majority() > size / 2);
        prop_assert!(comp.majority() <= size);
    }

    /// Splitting a composition by any permutation yields two disjoint halves
    /// that cover the original and differ in size by at most one.
    #[test]
    fn split_partitions_cleanly(size in 2usize..64, seed in 0u64..1000) {
        let comp: Composition = (0..size as u64).map(NodeId::new).collect();
        let mut order: Vec<usize> = (0..size).collect();
        use rand::seq::SliceRandom;
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        order.shuffle(&mut rng);
        let (a, b) = comp.split_by_order(&order);
        prop_assert_eq!(a.union(&b), comp);
        prop_assert!(a.intersection(&b).is_empty());
        prop_assert!(a.len() >= b.len());
        prop_assert!(a.len() - b.len() <= 1);
    }

    /// H-graph surgery (insert then remove) preserves the structural
    /// invariants and returns to the original vertex set.
    #[test]
    fn hgraph_surgery_preserves_invariants(
        vertices in 2usize..80,
        hc in 1u8..8,
        seed in 0u64..1000,
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let ids: Vec<VgroupId> = (0..vertices as u64).map(VgroupId::new).collect();
        let mut graph = HGraph::random(&ids, hc, &mut rng);
        prop_assert!(graph.check_invariants().is_ok());
        prop_assert!(graph.is_connected());

        let new = VgroupId::new(10_000);
        let anchors: Vec<VgroupId> = (0..hc as usize)
            .map(|c| graph.successor(c, ids[0]).unwrap())
            .collect();
        graph.insert(new, &anchors);
        prop_assert!(graph.check_invariants().is_ok());
        prop_assert_eq!(graph.vertex_count(), vertices + 1);

        prop_assert!(graph.remove(new));
        prop_assert!(graph.check_invariants().is_ok());
        prop_assert_eq!(graph.vertices(), ids);
    }

    /// The group-message collector accepts exactly once regardless of the
    /// order in which copies arrive, and never accepts without a majority.
    #[test]
    fn collector_accepts_exactly_once(
        group_size in 1u64..30,
        senders in proptest::collection::vec(0u64..30, 1..120),
    ) {
        let composition: Composition = (0..group_size).map(NodeId::new).collect();
        let mut collector = GroupMessageCollector::new(16);
        let digest = Digest::of(b"payload");
        let mut accepted = 0;
        let mut distinct_members = std::collections::BTreeSet::new();
        for s in senders {
            let sender = NodeId::new(s);
            if composition.contains(sender) {
                distinct_members.insert(sender);
            }
            if collector.observe(VgroupId::new(1), &composition, sender, digest, true) {
                accepted += 1;
                prop_assert!(distinct_members.len() >= composition.majority());
            }
        }
        prop_assert!(accepted <= 1);
        if distinct_members.len() >= composition.majority() {
            prop_assert_eq!(accepted, 1);
        }
    }

    /// Partitioning nodes into vgroups always satisfies the directory
    /// invariants and produces sizes within one of each other.
    #[test]
    fn directory_partition_is_balanced(nodes in 1usize..400, target in 1usize..30, seed in 0u64..100) {
        let ids: Vec<NodeId> = (0..nodes as u64).map(NodeId::new).collect();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let dir = VgroupDirectory::partition(&ids, target, &mut rng);
        prop_assert!(dir.check_invariants().is_ok());
        prop_assert_eq!(dir.node_count(), nodes);
        let sizes = dir.sizes();
        let min = sizes.iter().min().copied().unwrap_or(0);
        let max = sizes.iter().max().copied().unwrap_or(0);
        prop_assert!(max - min <= 1);
    }
}

#[test]
fn recommended_overlay_parameters_sample_uniformly() {
    // The guideline of Figure 4, checked end to end: walks of the
    // recommended length on the recommended density pass the χ² test.
    use atum::sim::is_uniform_99;
    for vgroups in [32usize, 128] {
        let entry = atum::types::recommended_params(vgroups);
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let ids: Vec<VgroupId> = (0..vgroups as u64).map(VgroupId::new).collect();
        let graph = HGraph::random(&ids, entry.hc, &mut rng);
        let hits = atum::overlay::simulate_walk_hits(
            &graph,
            VgroupId::new(0),
            entry.rwl,
            40 * vgroups,
            &mut rng,
        );
        let counts: Vec<u64> = hits.values().copied().collect();
        assert!(
            is_uniform_99(&counts),
            "recommended rwl {} / hc {} not uniform for {vgroups} vgroups",
            entry.rwl,
            entry.hc
        );
    }
}

// ---------------------------------------------------------------------------
// Model-checker counterexamples pinned as fixed-seed regression tests.
//
// The trace below was found by `crates/mcheck` (BFS over adversarial
// message/timer interleavings of real `AtumNode`s) and replays
// deterministically: same scenario config, same per-node RNG streams, same
// action sequence. If a protocol change breaks a replay, either the fix
// regressed (a verdict flips) or the trace no longer applies (an action is
// reported as stale) — both demand attention, not a blind re-baseline.
//
// Regenerate with:
//   cargo run --release -p atum-mcheck --bin mcheck -- \
//       --scenario torn_link --no-link-repair --depth 2 --trace-out traces/

use atum_mcheck::{Scenario, ScenarioConfig, Trace};

/// The minimal counterexample for the overlay link-surgery hole, exactly as
/// the checker emitted it: after a new group N is spliced between X and B on
/// cycle 0, the `CyclePatch` copies re-pointing B's predecessor from X to N
/// are in flight — one from each of X's four members to each B member.
/// Dropping two of the four copies addressed to B's member n4 leaves only
/// two distinct senders, below the majority (3) of X's composition, so n4's
/// predecessor stays wedged at X forever.
const TORN_LINK_COUNTEREXAMPLE: &str = r#"
{"config":{"scenario":"TornLink","seed":7,"link_repair":false,"drop_budget":2,"dup_budget":1},"property":"links_bidirectional"}
{"Drop":{"from":0,"to":4}}
{"Drop":{"from":1,"to":4}}
"#;

/// With link repair off (the pre-fix protocol), the counterexample replays
/// to a permanently one-directional link: the violation the repair was
/// built against.
#[test]
fn torn_link_counterexample_replays_to_violation_without_repair() {
    let trace = Trace::from_jsonl(TORN_LINK_COUNTEREXAMPLE).expect("embedded trace parses");
    assert_eq!(trace.header.property, "links_bidirectional");
    assert!(!trace.header.config.link_repair);
    let verdicts = trace
        .replay()
        .expect("trace replays against current protocol");
    assert!(
        !verdicts.links_bidirectional,
        "the pre-fix protocol must exhibit the torn link"
    );
    // The damage is contained: the healthy members of B still link back, so
    // the overlay stays connected and group-local agreement is intact.
    assert!(verdicts.cycles_connected);
    assert!(verdicts.epoch_agreement);
}

/// The identical adversarial schedule against the current protocol (link
/// repair on): the probe/confirm exchange detects the one-directional link
/// and re-stitches it before the properties are judged.
#[test]
fn torn_link_counterexample_is_healed_by_link_repair() {
    let mut trace = Trace::from_jsonl(TORN_LINK_COUNTEREXAMPLE).expect("embedded trace parses");
    trace.header.config.link_repair = true;
    let verdicts = trace
        .replay()
        .expect("trace replays against current protocol");
    assert!(
        verdicts.links_bidirectional,
        "link repair must heal the dropped-CyclePatch schedule"
    );
    assert!(verdicts.cycles_connected);
    assert!(verdicts.epoch_agreement);
    assert!(verdicts.broadcast_reach);
}

/// Dropping only *one* patch copy leaves three distinct senders — still a
/// majority of X's four members — so even the pre-fix protocol converges.
/// Pins the exact boundary the counterexample sits on.
#[test]
fn single_dropped_patch_copy_stays_below_the_majority_threshold() {
    let jsonl = concat!(
        r#"{"config":{"scenario":"TornLink","seed":7,"link_repair":false,"drop_budget":2,"dup_budget":1},"property":""}"#,
        "\n",
        r#"{"Drop":{"from":0,"to":4}}"#,
        "\n",
    );
    let trace = Trace::from_jsonl(jsonl).expect("parses");
    let verdicts = trace.replay().expect("replays");
    assert!(verdicts.links_bidirectional);
    assert!(verdicts.epoch_agreement);
}

/// Clean-run witness: the split-racing-join configuration settles with all
/// four invariants intact from the unperturbed initial state.
#[test]
fn split_racing_join_witness_settles_clean() {
    let trace = Trace::new(
        ScenarioConfig::new(Scenario::SplitRacingJoin).with_budgets(1, 1),
        "",
        Vec::new(),
    );
    let verdicts = trace.replay().expect("replays");
    assert!(verdicts.links_bidirectional);
    assert!(verdicts.cycles_connected);
    assert!(verdicts.epoch_agreement);
    assert!(verdicts.broadcast_reach);
}
