//! Loopback TCP system test: the acceptance bar of the `atum-net` runtime.
//!
//! A 32-node cluster (16 members seeded into vgroups, 16 joiners) must
//! bootstrap, grow to full membership through the *real* join protocol —
//! contact round-trips, placement walks, welcome quorums, all over real
//! sockets — and deliver an application broadcast end-to-end.

use atum::core::CollectingApp;
use atum::net::NetClusterBuilder;
use atum::types::{Duration, NodeId, Params};
use std::time::Duration as StdDuration;

fn net_params() -> Params {
    // Wall-clock scale: 200 ms rounds keep joins a few-second affair while
    // leaving the per-node timer cadence (round/2) far from busy-waiting.
    // Failure detection is deliberately *lazier* than the simulator
    // configurations use: on a loaded CI box a debug-build event loop can
    // stall for hundreds of milliseconds, and a short eviction window turns
    // that scheduling jitter into spurious eviction storms (ghost fuses
    // firing on members whose welcome quorum is still assembling, rejoin
    // churn, overlay fragmentation). Nothing actually crashes in this test,
    // so a ~24 s eviction horizon (and a 16 s never-activated ghost fuse, comfortably above the worst observed join latency) costs nothing and keeps the failure
    // detector honest about what silence means on a wall clock.
    // Group bounds are sized so doubling the membership *does* force
    // splits: overlay surgery (split insertion, merge cycle-patching)
    // racing admission churn used to strand vgroups behind one-directional
    // links, so earlier revisions pinned gmax high enough that the seeded
    // cycle structure never changed. The link-repair probes (see
    // `crates/mcheck`, which model-checks exactly this hole) now detect and
    // re-stitch torn links, so the test exercises the full story over
    // sockets: contact round-trips, placement walks, welcome quorums, SMR
    // slots, shuffle exchanges, gossip — and live split surgery. Caveat
    // unchanged: on a 1-core CI runner every node thread shares one CPU,
    // and CPU starvation (not protocol latency) dominates the wall clock.
    Params::default()
        .with_round(Duration::from_millis(200))
        .with_group_bounds(3, 6)
        .with_overlay(3, 5)
        .with_failure_detection(Duration::from_secs(8), 3)
}

#[test]
fn loopback_cluster_grows_to_32_members_and_broadcasts() {
    const SEEDED: usize = 16;
    const JOINERS: usize = 16;
    const TOTAL: usize = SEEDED + JOINERS;

    let cluster = NetClusterBuilder::new(SEEDED, JOINERS)
        .params(net_params())
        .group_size(4)
        .seed(11)
        .build(|_| CollectingApp::new());
    assert_eq!(cluster.member_count(), SEEDED);

    // Grow through the join protocol in waves of four, each joiner through a
    // distinct seeded contact, waiting for the previous wave to (mostly)
    // land so placement walks run on a settled overlay.
    let joiners = cluster.joiners.clone();
    for (wave_idx, wave) in joiners.chunks(4).enumerate() {
        for (i, &joiner) in wave.iter().enumerate() {
            let contact = NodeId::new(((wave_idx * 4 + i) % SEEDED) as u64);
            cluster.join(joiner, contact);
        }
        cluster.wait_for_members(
            (SEEDED + (wave_idx + 1) * 4).min(TOTAL),
            StdDuration::from_secs(30),
        );
    }
    let members = cluster.wait_for_members(TOTAL, StdDuration::from_secs(60));
    assert_eq!(
        members, TOTAL,
        "cluster did not reach full membership over TCP"
    );

    // An application broadcast must reach every member end-to-end. One
    // caveat of the protocol itself (not of the TCP runtime): shuffle
    // exchanges keep reconfiguring vgroups continuously after growth — the
    // paper's steady state is churn, not quiescence — and a single
    // broadcast can race a member mid-transfer and miss it (delivery is
    // probabilistic under churn; §6 reports ratios, not certainty). The
    // simulator behaves identically. So the end-to-end bar is: within a few
    // attempts, one broadcast reaches *all* members over real sockets.
    let origin = *joiners.last().unwrap();
    let mut full_delivery = false;
    let mut last_delivered = 0;
    for attempt in 0..8u8 {
        let payload = format!("over-real-sockets-{attempt}").into_bytes();
        cluster.broadcast(origin, payload.clone());
        let expected = payload.clone();
        last_delivered = cluster.wait_for_nodes(TOTAL, StdDuration::from_secs(30), move |n| {
            n.app().delivered_payloads().contains(&expected)
        });
        if last_delivered == TOTAL {
            full_delivery = true;
            break;
        }
    }
    if !full_delivery {
        for (id, line) in cluster.map_nodes(|n| {
            let delivered = n.app().delivered_payloads().len();
            match n.member() {
                Some(m) => format!(
                    "phase {:?} vgroup {:?} epoch {} comp {} engine_running {} delivered {delivered}",
                    n.phase(),
                    m.vgroup,
                    m.epoch,
                    m.composition.len(),
                    m.engine_running(),
                ),
                None => format!("phase {:?} (no member state)", n.phase()),
            }
        }) {
            eprintln!("{id}: {line}");
        }
        eprintln!("aggregate stats: {:?}", cluster.stats());
    }
    assert!(
        full_delivery,
        "no broadcast reached every member over TCP (best attempt {last_delivered}/{TOTAL})"
    );

    // The sockets genuinely carried the protocol, and no frame was rejected
    // by the decoder.
    let stats = cluster.stats();
    assert!(stats.frames_sent > 0 && stats.frames_received > 0);
    assert_eq!(stats.decode_errors, 0, "codec rejected well-formed traffic");
    cluster.shutdown();
}
