//! Fault-plane system tests: injected damage on real sockets, and the
//! sim/net fault-vocabulary parity the plane was built for.
//!
//! The deterministic *decision* layer (seeded decider streams, partition
//! matrices, bandwidth cursors) is unit-tested in `atum_net::faults`; these
//! tests drive whole clusters through the plane — injected loss, injected
//! corruption, partition-then-heal — and assert the middleware degrades and
//! recovers the way the paper's hostile-network story requires.

use atum::core::CollectingApp;
use atum::net::NetClusterBuilder;
use atum::sim::ClusterBuilder;
use atum::simnet::{FaultInjector, NetConfig};
use atum::types::{Duration, NodeId, Params};
use std::time::Duration as StdDuration;

fn net_params() -> Params {
    // Mirrors the `net_cluster` tuning: fast rounds, lazy failure
    // detection so scheduling jitter (and the deliberately injected fault
    // windows below, all shorter than the eviction horizon) never turns
    // into eviction storms on a loaded CI box.
    Params::default()
        .with_round(Duration::from_millis(100))
        .with_group_bounds(3, 10)
        .with_overlay(2, 4)
        .with_failure_detection(Duration::from_secs(8), 3)
}

#[test]
fn injected_loss_is_counted_and_heals() {
    let cluster = NetClusterBuilder::new(4, 0)
        .params(net_params())
        .seed(11)
        .build(|_| CollectingApp::new());
    assert_eq!(cluster.member_count(), 4);

    // Total injected loss: every cross-node frame is dropped at the send
    // path, counted apart from organic drops.
    cluster.faults().set_default_loss(1.0);
    cluster.broadcast(NodeId::new(0), b"into-the-void".to_vec());
    let deadline = std::time::Instant::now() + StdDuration::from_secs(10);
    while cluster.stats().frames_dropped_injected == 0 && std::time::Instant::now() < deadline {
        std::thread::sleep(StdDuration::from_millis(50));
    }
    let stats = cluster.stats();
    assert!(
        stats.frames_dropped_injected > 0,
        "injected drops must be counted: {stats:?}"
    );

    // Clearing the rules restores the benign path: a fresh broadcast
    // blankets the membership.
    cluster.faults().clear();
    cluster.broadcast(NodeId::new(1), b"after-heal".to_vec());
    let delivered = cluster.wait_for_nodes(4, StdDuration::from_secs(30), |n| {
        n.app()
            .delivered_payloads()
            .iter()
            .any(|p| p == b"after-heal")
    });
    assert_eq!(delivered, 4, "stats: {:?}", cluster.stats());
    cluster.shutdown();
}

#[test]
fn injected_corruption_closes_connections_not_nodes() {
    let cluster = NetClusterBuilder::new(4, 0)
        .params(net_params())
        .seed(13)
        .build(|_| CollectingApp::new());
    assert_eq!(cluster.member_count(), 4);

    // Corrupt every frame: receivers must reject each one (decode errors),
    // close only the damaged connection, and never panic or wedge.
    cluster.faults().set_corruption(1.0);
    cluster.broadcast(NodeId::new(0), b"mangled".to_vec());
    let deadline = std::time::Instant::now() + StdDuration::from_secs(10);
    while std::time::Instant::now() < deadline {
        let s = cluster.stats();
        if s.frames_corrupted_injected > 0 && s.decode_errors > 0 {
            break;
        }
        std::thread::sleep(StdDuration::from_millis(50));
    }
    let stats = cluster.stats();
    assert!(
        stats.frames_corrupted_injected > 0,
        "corruption must be injected: {stats:?}"
    );
    assert!(
        stats.decode_errors > 0,
        "corrupted frames must be rejected by the decoder: {stats:?}"
    );

    // Every reactor is still alive: with the plane cleared, connections are
    // re-established and a fresh broadcast goes end to end.
    cluster.faults().clear();
    cluster.broadcast(NodeId::new(2), b"recovered".to_vec());
    let delivered = cluster.wait_for_nodes(4, StdDuration::from_secs(30), |n| {
        n.app()
            .delivered_payloads()
            .iter()
            .any(|p| p == b"recovered")
    });
    assert_eq!(delivered, 4, "stats: {:?}", cluster.stats());
    cluster.shutdown();
}

#[test]
fn injected_connection_kills_reconnect_transparently() {
    let cluster = NetClusterBuilder::new(4, 0)
        .params(net_params())
        .seed(17)
        .build(|_| CollectingApp::new());
    assert_eq!(cluster.member_count(), 4);
    // Let the heartbeat mesh build some connections first.
    cluster.broadcast(NodeId::new(0), b"warm-up".to_vec());
    cluster.wait_for_nodes(4, StdDuration::from_secs(30), |n| {
        n.app().delivered_payloads().iter().any(|p| p == b"warm-up")
    });

    cluster.faults().kill_connections();
    let deadline = std::time::Instant::now() + StdDuration::from_secs(10);
    while cluster.stats().conns_killed_injected == 0 && std::time::Instant::now() < deadline {
        std::thread::sleep(StdDuration::from_millis(50));
    }
    assert!(
        cluster.stats().conns_killed_injected > 0,
        "kills must be observed: {:?}",
        cluster.stats()
    );

    // The reconnect ladder (now jittered) re-builds the mesh without any
    // protocol-level help.
    cluster.broadcast(NodeId::new(3), b"post-kill".to_vec());
    let delivered = cluster.wait_for_nodes(4, StdDuration::from_secs(30), |n| {
        n.app()
            .delivered_payloads()
            .iter()
            .any(|p| p == b"post-kill")
    });
    assert_eq!(delivered, 4, "stats: {:?}", cluster.stats());
    cluster.shutdown();
}

/// The vocabulary-parity scenario: the *same* partition-heal script, spoken
/// through the shared `partition`/`heal` verbs, must leave both runtimes
/// with full membership and a post-heal broadcast blanketing every member.
#[test]
fn partition_heal_parity_between_sim_and_net() {
    let n = 8usize;
    let halves = |ids: &[NodeId]| -> (Vec<NodeId>, Vec<NodeId>) {
        let mid = ids.len() / 2;
        (ids[..mid].to_vec(), ids[mid..].to_vec())
    };

    // --- Simulator run.
    let mut cluster = ClusterBuilder::new(n)
        .params(net_params())
        .seed(23)
        .build(|_| CollectingApp::new());
    let ids = cluster.initial_nodes.clone();
    let (a, b) = halves(&ids);
    FaultInjector::partition(&mut cluster.sim, &a, &b);
    cluster.sim.run_for(Duration::from_secs(5));
    FaultInjector::heal(&mut cluster.sim);
    cluster.sim.run_for(Duration::from_secs(5));
    assert_eq!(
        cluster.member_count(),
        n,
        "sim membership survived the split"
    );
    let origin = ids[0];
    cluster
        .broadcast_tracked(origin, b"sim-post-heal".to_vec())
        .expect("origin is a member");
    cluster.sim.run_for(Duration::from_secs(60));
    for &id in &ids {
        let delivered = cluster.sim.node(id).unwrap().app().delivered_payloads();
        assert!(
            delivered.iter().any(|p| p == b"sim-post-heal"),
            "sim node {id} missed the post-heal broadcast"
        );
    }

    // --- TCP run: identical script, the plane speaking the same verbs.
    let cluster = NetClusterBuilder::new(n, 0)
        .params(net_params())
        .seed(23)
        .build(|_| CollectingApp::new());
    assert_eq!(cluster.member_count(), n);
    let ids = cluster.node_ids();
    let (a, b) = halves(&ids);
    cluster.faults().partition(&a, &b);
    std::thread::sleep(StdDuration::from_secs(2));
    cluster.faults().heal();
    assert_eq!(
        cluster.member_count(),
        n,
        "net membership survived the split"
    );
    cluster.broadcast(ids[0], b"net-post-heal".to_vec());
    let delivered = cluster.wait_for_nodes(n, StdDuration::from_secs(60), |node| {
        node.app()
            .delivered_payloads()
            .iter()
            .any(|p| p == b"net-post-heal")
    });
    assert_eq!(delivered, n, "stats: {:?}", cluster.stats());
    cluster.shutdown();
}

/// The straggler hole the repair path closes: under sustained random loss a
/// gossip copy that is dropped used to have no retransmit, stranding single
/// members without the broadcast forever. With broadcast repair on, the
/// announce-piggybacked digest → pull → re-gossip loop blankets the
/// membership anyway. Deterministic (simulator, fixed seed).
#[test]
fn lossy_links_are_repaired_by_broadcast_anti_entropy() {
    let params = Params::default()
        .with_round(Duration::from_millis(250))
        .with_group_bounds(3, 8)
        .with_overlay(2, 4)
        // Fast announce cadence (2 × heartbeat) so repair rounds fit the
        // horizon; eviction patience high enough that loss-eaten
        // heartbeats cannot trigger eviction churn during the run.
        .with_failure_detection(Duration::from_secs(2), 30);
    let mut cluster = ClusterBuilder::new(24)
        .params(params)
        .seed(41)
        .net(NetConfig::lossy(0.15))
        .build(|_| CollectingApp::new());
    let ids = cluster.initial_nodes.clone();
    let origin = ids[5];
    cluster
        .broadcast_tracked(origin, b"through-the-storm".to_vec())
        .expect("origin is a member");
    cluster.sim.run_for(Duration::from_secs(90));
    let holes: Vec<NodeId> = ids
        .iter()
        .copied()
        .filter(|&id| {
            !cluster
                .sim
                .node(id)
                .unwrap()
                .app()
                .delivered_payloads()
                .iter()
                .any(|p| p == b"through-the-storm")
        })
        .collect();
    assert!(holes.is_empty(), "broadcast repair left holes at {holes:?}");
}
