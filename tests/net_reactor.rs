//! Torture tests for the reactor runtime: misbehaving peers, mid-frame
//! disconnects, half-open sockets, shutdown draining, address retargeting,
//! and the per-pair ordering guarantee when one reactor multiplexes many
//! nodes.
//!
//! The peers here are mostly *raw* sockets driven by the test itself — the
//! point is to poke the reactor from outside the friendly codepaths.

use atum::net::frame::{self, Hello, NetError, Route};
use atum::net::{NetCluster, NetClusterBuilder, NetRuntime, RuntimeConfig};
use atum::simnet::{Context, Node};
use atum::types::wire::{self, FRAME_KIND_HELLO, FRAME_KIND_MESSAGE, FRAME_KIND_ROUTE};
use atum::types::NodeId;
use std::collections::BTreeMap;
use std::io::Write;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::Ordering;
use std::time::{Duration, Instant};

/// A node that records every message with its sender.
#[derive(Default)]
struct Recorder {
    seen: Vec<(NodeId, u64)>,
}

impl Node<u64> for Recorder {
    fn on_message(&mut self, from: NodeId, msg: u64, _ctx: &mut Context<'_, u64>) {
        self.seen.push((from, msg));
    }
    fn on_timer(&mut self, _tag: u64, _ctx: &mut Context<'_, u64>) {}
}

/// A node that only sends (driven via `call`); messages are raw payloads.
struct Blaster;

impl Node<Vec<u8>> for Blaster {
    fn on_message(&mut self, _from: NodeId, _msg: Vec<u8>, _ctx: &mut Context<'_, Vec<u8>>) {}
    fn on_timer(&mut self, _tag: u64, _ctx: &mut Context<'_, Vec<u8>>) {}
}

fn wait_until(timeout: Duration, mut pred: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + timeout;
    while Instant::now() < deadline {
        if pred() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    pred()
}

/// Sends a valid hello + one routed message on a raw socket.
fn send_routed(stream: &mut TcpStream, from: u64, to: u64, msg: u64) {
    stream
        .write_all(&frame::encode_frame(
            FRAME_KIND_HELLO,
            &Hello {
                node: NodeId::new(from),
                listen_port: 1,
            },
        ))
        .unwrap();
    stream
        .write_all(&frame::route_frame(Route {
            from: NodeId::new(from),
            to: NodeId::new(to),
        }))
        .unwrap();
    stream
        .write_all(&frame::frame_bytes(
            FRAME_KIND_MESSAGE,
            &wire::encode_to_vec(&msg),
        ))
        .unwrap();
    stream.flush().unwrap();
}

/// Reads route/message pairs off a raw stream until EOF/timeout, returning
/// the sequence numbers carried in the first 8 bytes of each payload.
fn read_seqs(stream: TcpStream, expect_from: NodeId, pause: Duration) -> Vec<u64> {
    let mut reader = std::io::BufReader::new(stream);
    let hello: Hello = frame::read_decoded(&mut reader, FRAME_KIND_HELLO).unwrap();
    assert_eq!(hello.node, expect_from);
    let mut seqs = Vec::new();
    let mut body = Vec::new();
    loop {
        if !pause.is_zero() {
            std::thread::sleep(pause);
        }
        match frame::read_frame_into(&mut reader, &mut body) {
            Ok(kind) if kind == FRAME_KIND_ROUTE => {
                let route: Route = wire::decode_exact(&body).unwrap();
                assert_eq!(route.from, expect_from);
            }
            Ok(kind) => {
                assert_eq!(kind, FRAME_KIND_MESSAGE);
                let payload: Vec<u8> = wire::decode_exact(&body).unwrap();
                seqs.push(u64::from_le_bytes(payload[..8].try_into().unwrap()));
            }
            Err(NetError::Io(_)) => break, // EOF or read timeout
            Err(e) => panic!("unexpected frame error: {e}"),
        }
    }
    seqs
}

fn numbered_payload(seq: u64, len: usize) -> Vec<u8> {
    let mut payload = vec![0u8; len];
    payload[..8].copy_from_slice(&seq.to_le_bytes());
    payload
}

#[test]
fn mid_frame_disconnect_is_harmless() {
    let runtime: NetRuntime<u64, Recorder> = NetRuntime::bind(RuntimeConfig::default()).unwrap();
    let node = runtime.host(NodeId::new(0), Recorder::default());

    // A peer delivers one full message, starts a second frame, and vanishes
    // mid-header; another starts a message *body* and vanishes mid-body.
    {
        let mut s = TcpStream::connect(node.addr()).unwrap();
        send_routed(&mut s, 7, 0, 1);
        s.write_all(&[0x41, 0x54]).unwrap(); // half a frame header
        s.flush().unwrap();
    } // dropped: FIN mid-frame
    {
        let mut s = TcpStream::connect(node.addr()).unwrap();
        send_routed(&mut s, 8, 0, 2);
        s.write_all(&frame::route_frame(Route {
            from: NodeId::new(8),
            to: NodeId::new(0),
        }))
        .unwrap();
        let full = frame::frame_bytes(FRAME_KIND_MESSAGE, &wire::encode_to_vec(&999u64));
        s.write_all(&full[..full.len() - 3]).unwrap(); // truncated body
        s.flush().unwrap();
    }

    // Both complete messages arrived; the truncated ones never did, the
    // reactor never counted them as protocol errors (EOF is not garbage),
    // and the node keeps serving fresh connections.
    assert!(wait_until(Duration::from_secs(5), || {
        node.with_node(|n| n.seen.len()).unwrap_or(0) == 2
    }));
    let mut s = TcpStream::connect(node.addr()).unwrap();
    send_routed(&mut s, 9, 0, 3);
    assert!(wait_until(Duration::from_secs(5), || {
        node.with_node(|n| n.seen.contains(&(NodeId::new(9), 3)))
            .unwrap_or(false)
    }));
    assert_eq!(runtime.stats().decode_errors.load(Ordering::Relaxed), 0);
    runtime.shutdown();
}

#[test]
fn half_open_sockets_do_not_wedge_the_reactor() {
    let runtime: NetRuntime<u64, Recorder> = NetRuntime::bind(RuntimeConfig::default()).unwrap();
    let node = runtime.host(NodeId::new(0), Recorder::default());

    // A swarm of connections that say hello and then go silent forever —
    // under the old thread-per-connection runtime each of these pinned a
    // blocked reader thread; the reactor just keeps them registered.
    let mut lurkers = Vec::new();
    for i in 0..32u64 {
        let mut s = TcpStream::connect(node.addr()).unwrap();
        s.write_all(&frame::encode_frame(
            FRAME_KIND_HELLO,
            &Hello {
                node: NodeId::new(100 + i),
                listen_port: 1,
            },
        ))
        .unwrap();
        lurkers.push(s); // kept open, never written again
    }
    // And one connection that never even says hello.
    let mute = TcpStream::connect(node.addr()).unwrap();

    // Real traffic still flows, on one thread, with no errors.
    let mut s = TcpStream::connect(node.addr()).unwrap();
    send_routed(&mut s, 50, 0, 42);
    assert!(wait_until(Duration::from_secs(5), || {
        node.with_node(|n| n.seen.contains(&(NodeId::new(50), 42)))
            .unwrap_or(false)
    }));
    assert_eq!(runtime.stats().threads.load(Ordering::Relaxed), 1);
    assert_eq!(runtime.stats().decode_errors.load(Ordering::Relaxed), 0);
    drop(lurkers);
    drop(mute);
    runtime.shutdown();
}

#[test]
fn shutdown_drains_queued_frames_to_a_slow_reader() {
    let runtime: NetRuntime<Vec<u8>, Blaster> = NetRuntime::bind(RuntimeConfig {
        queue_capacity: 4096,
        drain_timeout: Duration::from_secs(60),
        ..RuntimeConfig::default()
    })
    .unwrap();
    let node = runtime.host(NodeId::new(0), Blaster);

    // A slow raw peer that far exceeds the socket buffers, so real queue
    // content exists at shutdown time.
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    runtime
        .book()
        .register(NodeId::new(9), listener.local_addr().unwrap());

    const K: u64 = 48;
    const PAYLOAD: usize = 256 * 1024;
    node.call(|_n, ctx| {
        for i in 0..K {
            ctx.send(NodeId::new(9), numbered_payload(i, PAYLOAD));
        }
    });
    let (stream, _) = listener.accept().unwrap();
    let reader = std::thread::spawn(move || read_seqs(stream, NodeId::new(0), Duration::ZERO));

    // Give the burst a moment to queue, then shut down: the drain phase
    // must flush everything before sockets close.
    std::thread::sleep(Duration::from_millis(300));
    let stats = runtime.stats().clone();
    runtime.shutdown();
    assert_eq!(
        stats.frames_dropped.load(Ordering::Relaxed),
        0,
        "drain gave up on queued frames"
    );
    let got = reader.join().unwrap();
    assert_eq!(
        got,
        (0..K).collect::<Vec<_>>(),
        "drain lost or reordered frames"
    );
}

#[test]
fn reregistration_retargets_queued_frames_to_the_new_address() {
    let runtime: NetRuntime<Vec<u8>, Blaster> = NetRuntime::bind(RuntimeConfig {
        queue_capacity: 4096,
        drain_timeout: Duration::from_secs(60),
        ..RuntimeConfig::default()
    })
    .unwrap();
    let node = runtime.host(NodeId::new(0), Blaster);

    // Peer 9 first lives on a listener that accepts but never reads: the
    // socket buffers fill and the queue backs up.
    let dead = TcpListener::bind("127.0.0.1:0").unwrap();
    runtime
        .book()
        .register(NodeId::new(9), dead.local_addr().unwrap());
    const K: u64 = 48;
    const PAYLOAD: usize = 256 * 1024;
    node.call(|_n, ctx| {
        for i in 0..K {
            ctx.send(NodeId::new(9), numbered_payload(i, PAYLOAD));
        }
    });
    let (_stuck, _) = dead.accept().unwrap();
    std::thread::sleep(Duration::from_millis(400));

    // Peer 9 "moves": a live listener, re-registered in the shared book.
    let live = TcpListener::bind("127.0.0.1:0").unwrap();
    runtime
        .book()
        .register(NodeId::new(9), live.local_addr().unwrap());

    // The queued frames migrate to the new connection. The batch already
    // staged on the old socket stays there (at-least-once, not
    // exactly-once, across a retarget), so the new stream is a strictly
    // increasing *suffix* ending at the last sequence number.
    let (stream, _) = live.accept().unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let got = read_seqs(stream, NodeId::new(0), Duration::ZERO);
    assert!(!got.is_empty(), "nothing migrated to the new address");
    assert!(
        got.windows(2).all(|w| w[0] < w[1]),
        "migrated frames out of order: {got:?}"
    );
    assert_eq!(got.last(), Some(&(K - 1)), "the tail never migrated");
    runtime.shutdown();
}

/// A node that sends a numbered stream to every configured peer (itself
/// included) when poked, and records what it receives per sender.
struct PairSender {
    peers: Vec<NodeId>,
    per_peer: u64,
    seen: BTreeMap<NodeId, Vec<u64>>,
}

impl Node<u64> for PairSender {
    fn on_message(&mut self, from: NodeId, msg: u64, ctx: &mut Context<'_, u64>) {
        if msg == u64::MAX {
            // The "go" poke: emit the full stream to every peer.
            for round in 0..self.per_peer {
                for &peer in &self.peers {
                    ctx.send(peer, round);
                }
            }
            return;
        }
        self.seen.entry(from).or_default().push(msg);
    }
    fn on_timer(&mut self, _tag: u64, _ctx: &mut Context<'_, u64>) {}
}

#[test]
fn one_reactor_many_nodes_delivers_exactly_once_in_order_per_pair() {
    const N: u64 = 8;
    const PER_PEER: u64 = 50;
    let runtime: NetRuntime<u64, PairSender> = NetRuntime::bind(RuntimeConfig {
        queue_capacity: 65536,
        ..RuntimeConfig::default()
    })
    .unwrap();
    let peers: Vec<NodeId> = (0..N).map(NodeId::new).collect();
    let handles: Vec<_> = peers
        .iter()
        .map(|&id| {
            runtime.host(
                id,
                PairSender {
                    peers: peers.clone(),
                    per_peer: PER_PEER,
                    seen: BTreeMap::new(),
                },
            )
        })
        .collect();
    assert_eq!(runtime.stats().threads.load(Ordering::Relaxed), 1);

    // Poke every node: N×N streams (self-sends included) over one reactor.
    for h in &handles {
        let me = h.id();
        h.call(move |_n, ctx| ctx.send(me, u64::MAX));
    }

    let expect: Vec<u64> = (0..PER_PEER).collect();
    assert!(
        wait_until(Duration::from_secs(60), || {
            handles.iter().all(|h| {
                h.with_node(|n| {
                    n.seen.len() == N as usize
                        && n.seen.values().all(|v| v.len() == PER_PEER as usize)
                })
                .unwrap_or(false)
            })
        }),
        "pairwise streams incomplete: {:?}",
        handles
            .iter()
            .map(|h| {
                h.with_node(|n| {
                    n.seen
                        .iter()
                        .map(|(k, v)| (*k, v.len()))
                        .collect::<Vec<_>>()
                })
                .unwrap_or_default()
            })
            .collect::<Vec<_>>()
    );
    // Exactly once, in order, for every ordered pair — including X→X.
    for h in &handles {
        let seen = h.with_node(|n| n.seen.clone()).unwrap();
        assert_eq!(seen.len(), N as usize);
        for (&from, stream) in &seen {
            assert_eq!(
                stream,
                &expect,
                "stream {from:?} → {:?} is not exactly-once-in-order",
                h.id()
            );
        }
    }
    assert_eq!(runtime.stats().frames_dropped.load(Ordering::Relaxed), 0);
    assert_eq!(runtime.stats().decode_errors.load(Ordering::Relaxed), 0);
    runtime.shutdown();
}

/// 256 nodes running the real join protocol in debug mode. Ignored in the
/// tier-1 suite (it needs minutes on a small machine); CI exercises the
/// same path at larger scale in release via `bench_net net_scale
/// --reduced`. Run explicitly with `cargo test --test net_reactor --
/// --ignored`.
#[test]
#[ignore = "slow in debug; the net-scale-smoke CI job covers it in release"]
fn two_hundred_fifty_six_nodes_join_over_sockets() {
    use atum::core::CollectingApp;
    use atum::types::{Duration as AtumDuration, Params};
    let params = Params::default()
        .with_round(AtumDuration::from_millis(250))
        .with_group_bounds(4, 16)
        .with_overlay(2, 4)
        .with_failure_detection(AtumDuration::from_secs(20), 5);
    let cluster: NetCluster<CollectingApp> = NetClusterBuilder::new(192, 64)
        .params(params)
        .seed(3)
        .build(|_| CollectingApp::new());
    for (i, &joiner) in cluster.joiners.clone().iter().enumerate() {
        cluster.join(joiner, NodeId::new((i % 192) as u64));
        std::thread::sleep(Duration::from_millis(50));
    }
    let members = cluster.wait_for_members(256, Duration::from_secs(600));
    assert!(
        members >= 243,
        "only {members}/256 joined; stats: {:?}",
        cluster.stats()
    );
    cluster.shutdown();
}
