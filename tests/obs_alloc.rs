//! Pins the observability crate's off-path overhead invariant with a
//! counting global allocator: a `trace_event!` call site whose kind is
//! disabled must not allocate, and neither may flight recording into a
//! pre-allocated ring. This is the contract that lets the protocol layers
//! keep their trace call sites compiled in unconditionally.
//!
//! The allocator counter is process-global, so this file holds exactly one
//! `#[test]` — a second test thread would pollute the measurement.

use atum::obs::flight::{self, FlightRecorder};
use atum::obs::trace::{self, EventKind};
use atum::obs::trace_event;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: defers entirely to `System`; the counter has no effect on layout.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Allocations charged while running `f`, minimised over a few trials so a
/// one-off allocation elsewhere in the process (the test harness's waiter
/// thread, lazy TLS setup) cannot produce a false positive.
fn min_allocs_of<F: FnMut()>(mut f: F) -> u64 {
    let mut min = u64::MAX;
    for _ in 0..3 {
        let before = ALLOCATIONS.load(Ordering::Relaxed);
        f();
        let after = ALLOCATIONS.load(Ordering::Relaxed);
        min = min.min(after - before);
    }
    min
}

#[test]
fn disabled_and_flight_only_call_sites_do_not_allocate() {
    // Explicit configuration: no sink kinds, no flight recording. The first
    // armed() call would otherwise read the environment (which allocates),
    // so configure before measuring.
    trace::set_enabled_kinds(&[]);
    trace::set_flight_recording(false);

    // Warm up every lazily-initialised path (TLS slots, the sink lock).
    trace_event!(Join, at = 0, node = 0, slots = [0, 0, 0], "warmup {}", 1);

    // Fully disabled: the call site is one relaxed load and a branch. The
    // format arguments must not be evaluated.
    let disabled = min_allocs_of(|| {
        for i in 0..1_000u64 {
            trace_event!(
                Join,
                at = i,
                node = 42,
                slots = [i, i + 1, i + 2],
                "expensive detail {}",
                "x".repeat(64) // would allocate if ever evaluated
            );
            trace_event!(Walk, at = i, node = 42, slots = [0, 0, 0]);
        }
    });
    assert_eq!(
        disabled, 0,
        "disabled trace_event! call sites must be allocation-free"
    );

    // Flight-only: recording into a pre-allocated ring is a Copy write
    // under a mutex — steady state allocates nothing, and the sink-side
    // detail closure still never runs.
    trace::set_flight_recording(true);
    let recorder = Arc::new(FlightRecorder::new());
    // Fill the ring once so steady state is overwrite, not growth (the ring
    // is pre-allocated either way, but this pins the overwrite path too).
    for i in 0..600u64 {
        recorder.record(atum::obs::FlightEvent {
            seq: 0,
            at_us: i,
            node: 1,
            kind: EventKind::Join as u8,
            a: 0,
            b: 0,
            c: 0,
        });
    }
    let guard = flight::scope(&recorder);
    let flight_only = min_allocs_of(|| {
        for i in 0..1_000u64 {
            trace_event!(
                Welcome,
                at = i,
                node = 42,
                slots = [i, 0, 0],
                "never rendered {}",
                "y".repeat(64)
            );
        }
    });
    drop(guard);
    trace::set_flight_recording(false);
    assert_eq!(
        flight_only, 0,
        "flight-only recording must be allocation-free in steady state"
    );
    assert!(recorder.recorded() >= 600 + 1_000);
}
