//! Observability system tests: the sim/net event-vocabulary parity the
//! tracing plane promises, and the flight-recorder escape hatch on a wedged
//! membership wait.
//!
//! Both tests mutate the process-wide trace mask and sink, so they
//! serialize on a file-local lock.

use atum::core::{AtumNode, CollectingApp};
use atum::net::NetClusterBuilder;
use atum::obs::flight::parse_jsonl;
use atum::obs::trace::{self, EventKind};
use atum::sim::ClusterBuilder;
use atum::types::{Duration, NodeId, Params};
use std::collections::BTreeSet;
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Duration as StdDuration;

/// Serialises the tests in this binary: the trace mask, sink and flight
/// arming are process-global.
fn trace_lock() -> &'static Mutex<()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
}

fn protocol_params() -> Params {
    // Fast rounds so joins land quickly; lazy failure detection so the
    // injected fault windows below never trigger eviction storms.
    Params::default()
        .with_round(Duration::from_millis(200))
        .with_group_bounds(3, 10)
        .with_overlay(2, 4)
        .with_failure_detection(Duration::from_secs(8), 3)
}

/// The protocol situations both substrates must narrate identically: a
/// node joining (contact round-trip), its placement walk, its welcome
/// quorum, and the fault plane injecting damage into live traffic.
const PARITY_KINDS: [EventKind; 4] = [
    EventKind::Join,
    EventKind::Walk,
    EventKind::Welcome,
    EventKind::FaultInjected,
];

#[test]
fn sim_and_net_emit_the_same_event_vocabulary() {
    let _guard = trace_lock().lock().unwrap_or_else(|e| e.into_inner());

    // Capture kinds in-process instead of spraying stderr.
    let seen: Arc<Mutex<BTreeSet<&'static str>>> = Arc::new(Mutex::new(BTreeSet::new()));
    {
        let seen = seen.clone();
        trace::set_output_collector(Arc::new(move |kind, _line| {
            seen.lock().expect("collector set").insert(kind.as_str());
        }));
    }
    trace::enable_all_kinds();

    // --- simulated substrate: join one node, then partition mid-traffic.
    let mut cluster = ClusterBuilder::new(10)
        .params(protocol_params())
        .spare_identities(1)
        .seed(5)
        .build(|_| CollectingApp::new());
    let joiner = NodeId::new(10);
    let node = AtumNode::new(
        joiner,
        cluster.params.clone(),
        cluster.registry.clone(),
        CollectingApp::new(),
    );
    cluster.sim.add_node(joiner, node);
    cluster.sim.call(joiner, |n, ctx| {
        let _ = n.join(NodeId::new(0), ctx);
    });
    let members = cluster.wait_for_members(11, Duration::from_secs(120));
    assert_eq!(members, 11, "sim joiner must become a member");
    // Partition one node away mid-heartbeat-traffic: every frame crossing
    // the cut is a fault injection.
    let rest: Vec<NodeId> = (1..11).map(NodeId::new).collect();
    cluster.sim.partition(&[NodeId::new(0)], &rest);
    cluster.sim.run_for(Duration::from_secs(3));
    cluster.sim.heal();

    let sim_kinds: BTreeSet<&'static str> = {
        let mut set = seen.lock().expect("collector set");
        let snapshot = set.clone();
        set.clear();
        snapshot
    };

    // --- socket substrate: same story over loopback TCP.
    let cluster = NetClusterBuilder::new(6, 1)
        .params(protocol_params())
        .seed(7)
        .build(|_| CollectingApp::new());
    assert_eq!(cluster.member_count(), 6);
    let joiner = cluster.joiners[0];
    cluster.join(joiner, NodeId::new(0));
    let members = cluster.wait_for_members(7, StdDuration::from_secs(60));
    assert_eq!(members, 7, "net joiner must become a member");
    // Total injected loss while a broadcast storms: every dropped frame is
    // a fault-injected event on the sending node.
    cluster.faults().set_default_loss(1.0);
    cluster.broadcast(NodeId::new(1), b"into-the-void".to_vec());
    let deadline = std::time::Instant::now() + StdDuration::from_secs(10);
    while cluster.stats().frames_dropped_injected == 0 && std::time::Instant::now() < deadline {
        std::thread::sleep(StdDuration::from_millis(50));
    }
    cluster.faults().clear();
    cluster.shutdown();

    let net_kinds: BTreeSet<&'static str> = seen.lock().expect("collector set").clone();

    // Restore defaults before releasing the lock.
    trace::set_output_stderr();
    trace::set_enabled_kinds(&[]);

    for kind in PARITY_KINDS {
        assert!(
            sim_kinds.contains(kind.as_str()),
            "sim substrate never emitted {:?}; saw {sim_kinds:?}",
            kind.as_str()
        );
        assert!(
            net_kinds.contains(kind.as_str()),
            "net substrate never emitted {:?}; saw {net_kinds:?}",
            kind.as_str()
        );
    }
}

#[test]
fn stuck_join_leaves_a_parseable_flight_dump() {
    let _guard = trace_lock().lock().unwrap_or_else(|e| e.into_inner());
    trace::set_enabled_kinds(&[]); // flight recording only — no sink noise

    let cluster = NetClusterBuilder::new(4, 2)
        .params(protocol_params())
        .seed(23)
        .build(|_| CollectingApp::new());
    assert_eq!(cluster.member_count(), 4);
    let healthy = cluster.joiners[0];
    let stuck = cluster.joiners[1];

    // One joiner lands normally, so the members route a real placement walk.
    cluster.join(healthy, NodeId::new(0));
    assert_eq!(cluster.wait_for_members(5, StdDuration::from_secs(60)), 5);

    // The other is partitioned away *before* joining: its contact request
    // vanishes, the join wedges, and `wait_for_members` must time out and
    // leave a usable flight dump behind.
    let others: Vec<NodeId> = cluster
        .node_ids()
        .into_iter()
        .filter(|&id| id != stuck)
        .collect();
    cluster.faults().partition(&[stuck], &others);
    cluster.join(stuck, NodeId::new(0));
    let members = cluster.wait_for_members(6, StdDuration::from_secs(5));
    assert_eq!(members, 5, "the partitioned joiner cannot become a member");

    // The stuck node's ring must replay its side of the story: the join
    // attempt (and any retries) it made into the void.
    let dump = cluster
        .node(stuck)
        .expect("stuck node is hosted")
        .dump_flight();
    let events = parse_jsonl(&dump).expect("flight dump is valid JSONL");
    assert!(!events.is_empty(), "stuck node recorded nothing");
    assert!(
        events.iter().any(|e| e.kind == EventKind::Join as u8),
        "stuck node's dump must contain join events: {dump}"
    );
    assert!(
        events.iter().all(|e| e.node == stuck.raw()),
        "a node's ring only holds its own events"
    );

    // The members' rings hold the other side: the healthy join's placement
    // walk routed through them.
    let member_has_walk = (0..4).any(|i| {
        let dump = cluster
            .node(NodeId::new(i))
            .expect("seeded node is hosted")
            .dump_flight();
        parse_jsonl(&dump)
            .expect("member dump is valid JSONL")
            .iter()
            .any(|e| e.kind == EventKind::Walk as u8)
    });
    assert!(member_has_walk, "no member recorded a placement walk");

    // And the harness-level dump writes one parseable file per ring.
    let dir = std::env::temp_dir().join(format!("atum-obs-flight-{}", std::process::id()));
    let written = cluster.dump_flights(&dir).expect("flight dir written");
    assert!(!written.is_empty());
    let expect = dir.join(format!("flight-{stuck}.jsonl"));
    assert!(written.contains(&expect), "stuck node's file missing");
    let on_disk = std::fs::read_to_string(&expect).expect("flight file readable");
    assert!(!parse_jsonl(&on_disk)
        .expect("on-disk dump parses")
        .is_empty());
    let _ = std::fs::remove_dir_all(&dir);

    cluster.faults().clear();
    cluster.shutdown();
}
