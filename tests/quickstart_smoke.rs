//! Smoke test: the `examples/quickstart.rs` scenario run end to end with a
//! fixed seed, asserting (rather than printing) the outcomes. Also checks
//! determinism: the same seed must produce the same delivery timeline.

use atum::core::{AtumNode, CollectingApp};
use atum::crypto::KeyRegistry;
use atum::simnet::{NetConfig, Simulation};
use atum::types::{Duration, Instant, NodeId, Params};

const NODES: u64 = 6;
const PAYLOAD: &[u8] = b"hello, volatile groups!";

/// Runs the quickstart scenario and returns, per node, whether it is a
/// member and when it delivered the quickstart broadcast (if it did).
fn run_quickstart(seed: u64) -> Vec<(bool, Option<Instant>)> {
    let mut registry = KeyRegistry::new();
    for i in 0..NODES {
        registry.register(NodeId::new(i), 2024);
    }
    let registry = registry.shared();
    let params = Params::default()
        .with_round(Duration::from_millis(500))
        .with_group_bounds(1, 8);

    let mut sim = Simulation::new(NetConfig::lan(), seed);
    for i in 0..NODES {
        let node = AtumNode::new(
            NodeId::new(i),
            params.clone(),
            registry.clone(),
            CollectingApp::new(),
        );
        sim.add_node(NodeId::new(i), node);
    }

    sim.call(NodeId::new(0), |n, ctx| n.bootstrap(ctx).unwrap());
    sim.run_for(Duration::from_secs(2));
    for i in 1..NODES {
        sim.call(NodeId::new(i), |n, ctx| {
            n.join(NodeId::new(0), ctx).unwrap()
        });
        sim.run_for(Duration::from_secs(45));
    }

    sim.call(NodeId::new(3), |n, ctx| {
        n.broadcast(PAYLOAD.to_vec(), ctx).unwrap();
    });
    sim.run_for(Duration::from_secs(30));

    (0..NODES)
        .map(|i| {
            let node = sim.node(NodeId::new(i)).unwrap();
            let delivered_at = node
                .app()
                .delivered()
                .iter()
                .find(|d| d.payload == PAYLOAD)
                .map(|d| d.at);
            (node.is_member(), delivered_at)
        })
        .collect()
}

#[test]
fn quickstart_scenario_runs_end_to_end() {
    let outcome = run_quickstart(1);
    for (i, (member, delivered_at)) in outcome.iter().enumerate() {
        assert!(member, "node {i} is not a member after the joins");
        assert!(
            delivered_at.is_some(),
            "node {i} never delivered the quickstart broadcast"
        );
    }
}

#[test]
fn quickstart_scenario_is_deterministic() {
    // Same seed ⇒ identical membership and identical delivery instants.
    let a = run_quickstart(1);
    let b = run_quickstart(1);
    assert_eq!(a, b, "same seed must reproduce the same timeline");
}
