//! Wire-codec coverage: round trips over every `AtumMessage` variant
//! (including the Arc-backed fabric types from the zero-copy PR), the
//! wire-size/encoding agreement bound, and adversarial decodes (truncation,
//! oversized length prefixes, trailing garbage) that must fail cleanly.

use atum::core::{AtumMessage, GroupEnvelope, GroupOp, GroupPayload};
use atum::crypto::{KeyRegistry, SignatureChain};
use atum::overlay::{CycleNeighbors, NeighborTable, WalkCertificate, WalkPurpose, WalkState};
use atum::smr::SmrMessage;
use atum::types::wire::{wire_len, WireError, FRAME_HEADER_LEN, MAX_FRAME_LEN};
use atum::types::{BroadcastId, Composition, NodeId, NodeIdentity, VgroupId, WalkId, WireSize};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::sync::Arc;

fn comp(ids: &[u64]) -> Composition {
    ids.iter().map(|&i| NodeId::new(i)).collect()
}

fn sample_walk(seed: u64) -> WalkState {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut walk = WalkState::new(
        WalkId::new(VgroupId::new(2), 9),
        WalkPurpose::JoinPlacement {
            joiner: NodeId::new(7),
        },
        VgroupId::new(2),
        comp(&[4, 5, 6]),
        3,
        &mut rng,
    );
    walk.advance(VgroupId::new(3));
    walk
}

fn sample_certificate() -> WalkCertificate {
    let mut registry = KeyRegistry::new();
    for i in 0..6 {
        registry.register(NodeId::new(i), 5);
    }
    let walk_id = WalkId::new(VgroupId::new(1), 3);
    let mut cert = WalkCertificate::new();
    let signers: Vec<_> = [0u64, 1]
        .iter()
        .map(|&i| registry.signer(NodeId::new(i)).unwrap())
        .collect();
    cert.push_step(walk_id, VgroupId::new(2), comp(&[3, 4, 5]), &signers);
    cert
}

fn sample_chain() -> SignatureChain {
    let mut registry = KeyRegistry::new();
    registry.register(NodeId::new(1), 9);
    registry.register(NodeId::new(2), 9);
    let digest = atum::crypto::Digest::of(b"batch");
    let mut chain = SignatureChain::new(digest, &registry.signer(NodeId::new(1)).unwrap());
    chain.append(&registry.signer(NodeId::new(2)).unwrap());
    chain
}

fn sample_neighbors() -> NeighborTable {
    let mut table = NeighborTable::new(3);
    table.set_cycle(
        0,
        CycleNeighbors {
            predecessor: VgroupId::new(8),
            predecessor_composition: comp(&[1, 2]),
            successor: VgroupId::new(9),
            successor_composition: comp(&[3, 4]),
        },
    );
    // Cycle 1 stays unknown (None) on purpose; cycle 2 is set.
    table.set_cycle(
        2,
        CycleNeighbors {
            predecessor: VgroupId::new(9),
            predecessor_composition: comp(&[3, 4]),
            successor: VgroupId::new(8),
            successor_composition: comp(&[1, 2]),
        },
    );
    table
}

fn all_payload_variants() -> Vec<GroupPayload> {
    vec![
        GroupPayload::Gossip {
            id: BroadcastId::new(NodeId::new(1), 2),
            payload: b"abc".to_vec().into(),
            hops: 3,
        },
        GroupPayload::Walk(sample_walk(5)),
        GroupPayload::CompositionUpdate {
            group: VgroupId::new(1),
            composition: comp(&[1, 2]),
        },
        GroupPayload::ExchangeOffer {
            walk: WalkId::new(VgroupId::new(1), 2),
            leaving: NodeId::new(3),
            incoming: NodeIdentity::simulated(NodeId::new(4)),
        },
        GroupPayload::ExchangeRefuse {
            walk: WalkId::new(VgroupId::new(1), 2),
            leaving: NodeId::new(3),
        },
        GroupPayload::ExchangeAccept {
            walk: WalkId::new(VgroupId::new(1), 2),
            given: NodeId::new(3),
            adopted: NodeIdentity::simulated(NodeId::new(4)),
        },
        GroupPayload::SplitInsert {
            cycle: 1,
            new_group: VgroupId::new(7),
            composition: comp(&[1, 2]),
        },
        GroupPayload::NeighborIntro {
            cycle: 1,
            sender_is_predecessor: true,
            group: VgroupId::new(7),
            composition: comp(&[1, 2]),
        },
        GroupPayload::MergeRequest {
            from: VgroupId::new(7),
            members: vec![NodeIdentity::simulated(NodeId::new(1))],
        },
        GroupPayload::MergeAccept {
            into: VgroupId::new(7),
            new_composition: comp(&[1, 2]),
        },
        GroupPayload::CyclePatch {
            cycle: 1,
            new_is_successor: true,
            group: VgroupId::new(7),
            composition: comp(&[1, 2]),
        },
        GroupPayload::LinkProbe {
            cycle: 1,
            sender_is_predecessor: true,
            far_neighbor: VgroupId::new(7),
            nonce: 3,
        },
        GroupPayload::LinkConfirm {
            cycle: 1,
            sender_is_predecessor: true,
            nonce: 3,
        },
    ]
}

fn all_op_variants() -> Vec<GroupOp> {
    vec![
        GroupOp::HandleJoinRequest {
            joiner: NodeIdentity::simulated(NodeId::new(1)),
            nonce: 2,
            rejoin: true,
        },
        GroupOp::AdmitJoiner {
            joiner: NodeIdentity::simulated(NodeId::new(1)),
            walk: WalkId::new(VgroupId::new(2), 3),
        },
        GroupOp::Leave {
            node: NodeId::new(1),
            nonce: 2,
        },
        GroupOp::Evict {
            node: NodeId::new(1),
            accuser: NodeId::new(2),
            nonce: 3,
        },
        GroupOp::Broadcast {
            id: BroadcastId::new(NodeId::new(1), 2),
            payload: b"xyz".to_vec().into(),
        },
        GroupOp::OfferExchange {
            walk: WalkId::new(VgroupId::new(1), 2),
            leaving: NodeIdentity::simulated(NodeId::new(3)),
            origin: VgroupId::new(4),
            origin_composition: comp(&[5, 6]),
        },
        GroupOp::CompleteExchange {
            walk: WalkId::new(VgroupId::new(1), 2),
            leaving: NodeId::new(3),
            incoming: NodeIdentity::simulated(NodeId::new(4)),
            partner: VgroupId::new(5),
            partner_composition: comp(&[6, 7]),
        },
        GroupOp::FinishExchange {
            walk: WalkId::new(VgroupId::new(1), 2),
            given: NodeId::new(3),
            adopted: NodeIdentity::simulated(NodeId::new(4)),
        },
        GroupOp::AcceptMerge {
            from: VgroupId::new(1),
            members: vec![NodeIdentity::simulated(NodeId::new(2))],
        },
        GroupOp::InsertOverlayNeighbor {
            cycle: 1,
            new_group: VgroupId::new(2),
            composition: comp(&[3, 4]),
        },
    ]
}

fn all_message_variants() -> Vec<AtumMessage> {
    let mut messages = vec![
        AtumMessage::JoinContactRequest,
        AtumMessage::JoinContactReply {
            group: VgroupId::new(3),
            composition: comp(&[1, 2, 3]),
        },
        AtumMessage::JoinRequest {
            joiner: NodeIdentity::simulated(NodeId::new(9)),
            nonce: 4,
            rejoin: false,
        },
        AtumMessage::Welcome {
            group: VgroupId::new(3),
            composition: comp(&[1, 2, 9]),
            neighbors: sample_neighbors(),
            epoch: 17,
        },
        AtumMessage::StateRequest {
            group: VgroupId::new(3),
            epoch: 16,
        },
        AtumMessage::Heartbeat {
            group: VgroupId::new(3),
            epoch: 17,
        },
        AtumMessage::Smr {
            group: VgroupId::new(3),
            epoch: 17,
            msg: SmrMessage::SyncValue {
                slot: 8,
                sender: NodeId::new(1),
                batch: all_op_variants(),
                chain: sample_chain(),
            },
        },
        AtumMessage::Smr {
            group: VgroupId::new(3),
            epoch: 17,
            msg: SmrMessage::ViewChange {
                new_view: 2,
                prepared: vec![(
                    4,
                    GroupOp::Leave {
                        node: NodeId::new(1),
                        nonce: 0,
                    },
                )],
            },
        },
        AtumMessage::Smr {
            group: VgroupId::new(3),
            epoch: 17,
            msg: SmrMessage::NewView {
                view: 2,
                ops: vec![(
                    4,
                    GroupOp::Leave {
                        node: NodeId::new(1),
                        nonce: 0,
                    },
                )],
                skips: vec![5, 6],
            },
        },
        AtumMessage::App {
            payload: vec![7; 100],
            advertised_size: 0,
        },
    ];
    // One Group message per payload variant, with a walk carrying a signed
    // certificate thrown in.
    for payload in all_payload_variants() {
        messages.push(AtumMessage::Group(Arc::new(GroupEnvelope::new(
            VgroupId::new(5),
            comp(&[1, 2, 3, 4, 5]),
            payload,
        ))));
    }
    let mut walk = sample_walk(6);
    walk.certificate = sample_certificate();
    messages.push(AtumMessage::Group(Arc::new(GroupEnvelope::new(
        VgroupId::new(5),
        comp(&[1, 2, 3]),
        GroupPayload::Walk(walk),
    ))));
    messages
}

#[test]
fn every_message_variant_round_trips() {
    let messages = all_message_variants();
    assert!(messages.len() >= 21, "cover every variant");
    for msg in &messages {
        let bytes = msg.encode_body();
        let back = AtumMessage::decode_body(&bytes).unwrap_or_else(|e| {
            panic!("decode failed for {msg:?}: {e}");
        });
        assert_eq!(&back, msg, "round trip changed the message");
    }
}

#[test]
fn group_envelopes_recompute_their_digest_on_decode() {
    // The digest is memoized sender-side but never trusted from the wire:
    // the decoder recomputes it from the payload, so the round-tripped
    // envelope carries the same digest without it ever being encoded.
    let envelope = GroupEnvelope::new(
        VgroupId::new(5),
        comp(&[1, 2, 3]),
        GroupPayload::Gossip {
            id: BroadcastId::new(NodeId::new(1), 0),
            payload: vec![9u8; 64].into(),
            hops: 2,
        },
    );
    let msg = AtumMessage::Group(Arc::new(envelope.clone()));
    let AtumMessage::Group(back) = AtumMessage::decode_body(&msg.encode_body()).unwrap() else {
        panic!("variant changed");
    };
    assert_eq!(back.digest(), envelope.digest());
}

#[test]
fn arc_sharing_survives_encoding_of_fanout_copies() {
    // Fan-out copies share one envelope allocation; encoding each copy must
    // not clone the envelope (encode takes &self through the Arc).
    let envelope = Arc::new(GroupEnvelope::new(
        VgroupId::new(5),
        comp(&[1, 2, 3]),
        GroupPayload::Gossip {
            id: BroadcastId::new(NodeId::new(1), 0),
            payload: vec![1u8; 32].into(),
            hops: 0,
        },
    ));
    let copies: Vec<AtumMessage> = (0..4)
        .map(|_| AtumMessage::Group(envelope.clone()))
        .collect();
    assert_eq!(Arc::strong_count(&envelope), 5);
    let encodings: Vec<Vec<u8>> = copies.iter().map(|m| m.encode_body()).collect();
    assert_eq!(Arc::strong_count(&envelope), 5, "encoding cloned the Arc");
    assert!(encodings.windows(2).all(|w| w[0] == w[1]));
}

#[test]
fn wire_size_is_the_exact_frame_size() {
    // The satellite bound: WireSize and the codec agree exactly (bound 0)
    // for every variant; `App` with an advertised size is the documented
    // exception (the logical payload stands in for a larger transfer).
    for msg in &all_message_variants() {
        assert_eq!(
            msg.wire_size(),
            FRAME_HEADER_LEN + wire_len(msg),
            "wire_size diverged from the encoding for {msg:?}"
        );
        assert_eq!(wire_len(msg), msg.encode_body().len());
    }
    let advertised = AtumMessage::App {
        payload: vec![1, 2, 3],
        advertised_size: 1_000_000,
    };
    assert_eq!(advertised.wire_size(), FRAME_HEADER_LEN + 1_000_000);
}

#[test]
fn encoded_frame_cache_is_byte_identical_for_every_variant() {
    use atum::net::frame::{frame_bytes, message_frame_shared};
    use atum::types::wire::FRAME_KIND_MESSAGE;
    use atum::types::FrameMemo;

    for msg in &all_message_variants() {
        let fresh = frame_bytes(FRAME_KIND_MESSAGE, &msg.encode_body());
        let (frame, encoded) = message_frame_shared(msg);
        assert!(encoded, "first framing must encode");
        assert_eq!(&frame[..], &fresh[..], "cached frame diverged for {msg:?}");
        // `wire_size` is the exact frame size, so it must also be the exact
        // length of the shareable frame.
        if !matches!(
            msg,
            AtumMessage::App {
                advertised_size: 1..,
                ..
            }
        ) {
            assert_eq!(msg.wire_size(), frame.len());
        }
        let (again, encoded_again) = message_frame_shared(msg);
        assert_eq!(&again[..], &fresh[..]);
        match msg {
            AtumMessage::Group(_) => {
                // Group frames are memoized on the shared envelope: the
                // second framing reuses the same allocation.
                assert!(!encoded_again, "group re-framing must hit the memo");
                assert!(Arc::ptr_eq(&frame, &again));
                assert!(msg.cached_frame().is_some());
                assert!(msg.fanout_identity().is_some());
            }
            _ => {
                // Unicast-shaped messages opt out of the memo.
                assert!(encoded_again);
                assert!(msg.cached_frame().is_none());
                assert!(msg.fanout_identity().is_none());
            }
        }
    }
}

#[test]
fn cloned_envelopes_do_not_inherit_the_frame_memo() {
    use atum::net::frame::message_frame_shared;
    use atum::types::FrameMemo;

    let envelope = Arc::new(GroupEnvelope::new(
        VgroupId::new(5),
        comp(&[1, 2, 3]),
        GroupPayload::Gossip {
            id: BroadcastId::new(NodeId::new(4), 4),
            payload: b"memo".to_vec().into(),
            hops: 0,
        },
    ));
    let msg = AtumMessage::Group(envelope.clone());
    let (_, encoded) = message_frame_shared(&msg);
    assert!(encoded);
    assert!(msg.cached_frame().is_some());
    // An owned clone has mutable public fields, so it must start with an
    // empty memo (a stale frame would otherwise survive a field edit).
    let cloned = AtumMessage::Group(Arc::new((*envelope).clone()));
    assert!(cloned.cached_frame().is_none());
    let (_, encoded_clone) = message_frame_shared(&cloned);
    assert!(encoded_clone);
}

#[test]
fn duplicate_group_decodes_hit_the_verified_digest_cache() {
    // Gossip re-delivers byte-identical envelopes by design; the receive
    // path must verify the digest once and serve duplicates from the
    // bounded cache. The digest itself must stay exactly the
    // recompute-from-payload value.
    let envelope = GroupEnvelope::new(
        VgroupId::new(11),
        comp(&[1, 2, 3]),
        GroupPayload::Gossip {
            id: BroadcastId::new(NodeId::new(2), 0xD16E57),
            payload: b"digest-cache-duplicate-arrival-test".to_vec().into(),
            hops: 1,
        },
    );
    let bytes = AtumMessage::Group(Arc::new(envelope.clone())).encode_body();

    let decode = |bytes: &[u8]| -> GroupEnvelope {
        let AtumMessage::Group(back) = AtumMessage::decode_body(bytes).unwrap() else {
            panic!("variant changed");
        };
        (*back).clone()
    };
    // First arrival verifies (computes) the digest and seeds the cache.
    let first = decode(&bytes);
    assert_eq!(first.digest(), envelope.digest());
    let (hits_before, _) = atum::core::verified_digest_stats();
    // Duplicate arrivals are served from the cache — and still carry the
    // exact recomputed digest.
    let second = decode(&bytes);
    assert_eq!(second.digest(), envelope.digest());
    let (hits_after, _) = atum::core::verified_digest_stats();
    assert!(
        hits_after > hits_before,
        "duplicate decode did not hit the verified-digest cache"
    );
}

#[test]
fn truncated_encodings_fail_cleanly_at_every_cut() {
    for msg in &all_message_variants() {
        let bytes = msg.encode_body();
        // Every strict prefix must fail with a clean error, never panic.
        let step = (bytes.len() / 23).max(1);
        for cut in (0..bytes.len()).step_by(step) {
            let err = AtumMessage::decode_body(&bytes[..cut]);
            assert!(
                err.is_err(),
                "decode of {cut}/{} bytes succeeded",
                bytes.len()
            );
        }
    }
}

#[test]
fn trailing_garbage_is_rejected() {
    let msg = AtumMessage::Heartbeat {
        group: VgroupId::new(3),
        epoch: 17,
    };
    let mut bytes = msg.encode_body();
    bytes.push(0x00);
    assert!(matches!(
        AtumMessage::decode_body(&bytes),
        Err(WireError::TrailingBytes(1))
    ));
}

#[test]
fn oversized_length_prefixes_are_rejected_before_allocation() {
    // A Welcome whose composition claims u32::MAX entries: the length check
    // runs against the remaining bytes before any Vec is reserved.
    let mut bytes = vec![3u8]; // Welcome tag
    bytes.extend_from_slice(&3u64.to_le_bytes()); // group
    bytes.extend_from_slice(&u32::MAX.to_le_bytes()); // composition length
    bytes.extend_from_slice(&[0u8; 16]); // far fewer bytes than claimed
    assert!(matches!(
        AtumMessage::decode_body(&bytes),
        Err(WireError::Malformed(_))
    ));

    // Same for an App payload length prefix.
    let mut bytes = vec![8u8]; // App tag
    bytes.extend_from_slice(&(MAX_FRAME_LEN as u32).to_le_bytes());
    bytes.extend_from_slice(&[0u8; 8]);
    assert!(AtumMessage::decode_body(&bytes).is_err());
}

#[test]
fn unknown_tags_and_malformed_scalars_are_rejected() {
    // Unknown top-level variant tag.
    assert!(matches!(
        AtumMessage::decode_body(&[250u8]),
        Err(WireError::Malformed("atum-message tag"))
    ));
    // A bool byte that is neither 0 nor 1 (JoinRequest.rejoin).
    let mut bytes = vec![2u8]; // JoinRequest tag
    NodeIdentity::simulated(NodeId::new(9));
    bytes.extend_from_slice(&9u64.to_le_bytes()); // identity id
    bytes.extend_from_slice(&[10, 0, 0, 9]); // identity ip
    bytes.extend_from_slice(&7009u16.to_le_bytes()); // identity port
    bytes.extend_from_slice(&4u64.to_le_bytes()); // nonce
    bytes.push(7); // rejoin: invalid bool
    assert!(matches!(
        AtumMessage::decode_body(&bytes),
        Err(WireError::Malformed("bool"))
    ));
}

#[test]
fn random_garbage_never_panics_the_decoder() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xC0DEC);
    for len in [0usize, 1, 7, 64, 512] {
        for _ in 0..2_000 {
            let bytes: Vec<u8> = (0..len).map(|_| rng.gen()).collect();
            // Either error or (vanishingly unlikely) a valid message; both
            // are fine — what is being tested is the absence of panics and
            // runaway allocations.
            let _ = AtumMessage::decode_body(&bytes);
        }
    }
}

#[test]
fn mutated_valid_encodings_never_panic_the_decoder() {
    // Bit-flip fuzzing seeded from real encodings: this reaches deep
    // decoder states that pure random bytes rarely hit.
    let mut rng = ChaCha8Rng::seed_from_u64(0xF1235);
    for msg in &all_message_variants() {
        let bytes = msg.encode_body();
        for _ in 0..200 {
            let mut mutated = bytes.clone();
            let flips = rng.gen_range(1..4);
            for _ in 0..flips {
                let idx = rng.gen_range(0..mutated.len());
                mutated[idx] ^= 1u8 << rng.gen_range(0..8u32);
            }
            let _ = AtumMessage::decode_body(&mutated);
        }
    }
}

mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn gossip_round_trips_for_arbitrary_payloads(
            payload in proptest::collection::vec(0u8..=255, 0..2048),
            origin in 0u64..1_000,
            seq in 0u64..1_000,
            hops in 0u32..64,
        ) {
            let msg = AtumMessage::Group(Arc::new(GroupEnvelope::new(
                VgroupId::new(5),
                comp(&[origin, origin + 1, origin + 2]),
                GroupPayload::Gossip {
                    id: BroadcastId::new(NodeId::new(origin), seq),
                    payload: payload.into(),
                    hops,
                },
            )));
            let back = AtumMessage::decode_body(&msg.encode_body()).unwrap();
            prop_assert_eq!(back, msg);
        }

        #[test]
        fn welcomes_round_trip_for_arbitrary_compositions(
            members in proptest::collection::vec(0u64..10_000, 1..40),
            epoch in 0u64..1_000_000,
        ) {
            let msg = AtumMessage::Welcome {
                group: VgroupId::new(epoch),
                composition: members.iter().map(|&m| NodeId::new(m)).collect(),
                neighbors: sample_neighbors(),
                epoch,
            };
            let back = AtumMessage::decode_body(&msg.encode_body()).unwrap();
            prop_assert_eq!(back, msg);
        }

        #[test]
        fn broadcast_ops_round_trip_inside_smr(
            payload in proptest::collection::vec(0u8..=255, 0..512),
            slot in 0u64..10_000,
        ) {
            let op = GroupOp::Broadcast {
                id: BroadcastId::new(NodeId::new(slot), slot),
                payload: payload.into(),
            };
            let msg = AtumMessage::Smr {
                group: VgroupId::new(1),
                epoch: slot,
                msg: SmrMessage::PrePrepare { view: 0, seq: slot, op },
            };
            let back = AtumMessage::decode_body(&msg.encode_body()).unwrap();
            prop_assert_eq!(back, msg);
        }
    }
}
