//! Vendored minimal benchmarking harness (offline stand-in for the
//! `criterion` crate).
//!
//! Implements the API surface the workspace's benches use — benchmark
//! groups, `bench_function` / `bench_with_input`, `Bencher::iter`,
//! throughput annotation and the `criterion_group!` / `criterion_main!`
//! macros — with a simple wall-clock measurement loop. No statistics, no
//! plots; run times are printed as `ns/iter` (plus derived throughput when
//! annotated).

#![forbid(unsafe_code)]

use std::fmt::{self, Display};
use std::time::{Duration, Instant};

/// Prevents the compiler from optimising away a benchmarked value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Throughput annotation for a benchmark.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// A benchmark identifier: function name plus parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Creates an id from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId {
            name: name.to_string(),
        }
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, running it enough times to smooth noise.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up.
        black_box(routine());
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// The top-level benchmark driver.
pub struct Criterion {
    sample_size: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            sample_size: self.sample_size,
            _criterion: self,
        }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let sample_size = self.sample_size;
        run_one(name, None, sample_size, f);
        self
    }
}

/// A group of related benchmarks sharing a name prefix and settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    sample_size: u64,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Annotates subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1) as u64;
        self
    }

    /// Runs a benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into());
        run_one(&full, self.throughput, self.sample_size, f);
        self
    }

    /// Runs a benchmark that receives a shared input reference.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        run_one(&full, self.throughput, self.sample_size, |b| f(b, input));
        self
    }

    /// Finishes the group.
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(
    name: &str,
    throughput: Option<Throughput>,
    sample_size: u64,
    mut f: F,
) {
    let mut bencher = Bencher {
        iters: sample_size,
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);
    let iters = bencher.iters.max(1);
    let per_iter_ns = bencher.elapsed.as_nanos() as f64 / iters as f64;
    match throughput {
        Some(Throughput::Bytes(bytes)) if per_iter_ns > 0.0 => {
            let mib_s = bytes as f64 / (per_iter_ns / 1e9) / (1024.0 * 1024.0);
            println!("bench {name}: {per_iter_ns:.0} ns/iter ({mib_s:.1} MiB/s)");
        }
        Some(Throughput::Elements(n)) if per_iter_ns > 0.0 => {
            let elem_s = n as f64 / (per_iter_ns / 1e9);
            println!("bench {name}: {per_iter_ns:.0} ns/iter ({elem_s:.0} elem/s)");
        }
        _ => println!("bench {name}: {per_iter_ns:.0} ns/iter"),
    }
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark binary's `main`, running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo test`/`cargo bench` pass harness flags; ignore them.
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        let mut runs = 0u64;
        group.bench_with_input(BenchmarkId::new("count", 1), &5u64, |b, &_n| {
            b.iter(|| {
                runs += 1;
            })
        });
        group.finish();
        assert!(runs >= 3);
    }
}
