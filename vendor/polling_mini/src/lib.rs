//! Minimal readiness polling over non-blocking sockets: a vendored,
//! Linux-only stand-in for the `mio`/`polling` crates (the build
//! environment has no access to crates.io).
//!
//! The API is the small slice the `atum-net` reactor needs:
//!
//! * [`Poller`] — an epoll instance: `register`/`modify`/`deregister` file
//!   descriptors under a caller-chosen `u64` key, and [`Poller::wait`] for
//!   readiness events with an optional timeout. Registrations are
//!   **level-triggered**: an fd with unread input (or writable space, when
//!   writable interest is set) is reported on every wait, so a caller that
//!   does not fully drain a socket is re-notified rather than wedged.
//! * [`Waker`] — an `eventfd` the owner registers with the poller; any
//!   thread can [`Waker::wake`] a blocked [`Poller::wait`].
//! * [`connect_nonblocking`] — starts a TCP connect without blocking and
//!   returns the in-progress `std::net::TcpStream` (completion is observed
//!   as writability; check `TcpStream::take_error` to learn the verdict).
//!
//! All `unsafe` of the net stack lives here, behind safe wrappers: the
//! workspace crates are `#![forbid(unsafe_code)]`, and the raw epoll /
//! eventfd / socket calls below are the irreducible platform surface. Every
//! wrapper owns the file descriptors it creates (closing them on drop) and
//! never hands out raw pointers.

#![cfg(target_os = "linux")]
#![warn(missing_docs)]

use std::io;
use std::net::{SocketAddr, TcpStream};
use std::os::fd::{FromRawFd, RawFd};
use std::time::Duration;

mod sys {
    use std::os::raw::{c_int, c_uint, c_void};

    pub const EPOLL_CLOEXEC: c_int = 0o2000000;
    pub const EPOLL_CTL_ADD: c_int = 1;
    pub const EPOLL_CTL_DEL: c_int = 2;
    pub const EPOLL_CTL_MOD: c_int = 3;
    pub const EPOLLIN: u32 = 0x001;
    pub const EPOLLOUT: u32 = 0x004;
    pub const EPOLLERR: u32 = 0x008;
    pub const EPOLLHUP: u32 = 0x010;
    pub const EPOLLRDHUP: u32 = 0x2000;
    pub const EFD_NONBLOCK: c_int = 0o4000;
    pub const EFD_CLOEXEC: c_int = 0o2000000;
    pub const AF_INET: c_int = 2;
    pub const AF_INET6: c_int = 10;
    pub const SOCK_STREAM: c_int = 1;
    pub const SOCK_NONBLOCK: c_int = 0o4000;
    pub const SOCK_CLOEXEC: c_int = 0o2000000;
    pub const EINPROGRESS: i32 = 115;

    /// x86-64 packs the kernel's `epoll_event` (no padding between the
    /// 32-bit mask and the 64-bit payload) — `repr(C, packed)` matches the
    /// kernel ABI on every architecture glibc supports epoll on.
    #[repr(C, packed)]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    #[repr(C)]
    pub struct SockAddrIn {
        pub family: u16,
        pub port: u16,
        pub addr: u32,
        pub zero: [u8; 8],
    }

    #[repr(C)]
    pub struct SockAddrIn6 {
        pub family: u16,
        pub port: u16,
        pub flowinfo: u32,
        pub addr: [u8; 16],
        pub scope_id: u32,
    }

    extern "C" {
        pub fn epoll_create1(flags: c_int) -> c_int;
        pub fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        pub fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout: c_int,
        ) -> c_int;
        pub fn eventfd(initval: c_uint, flags: c_int) -> c_int;
        pub fn socket(domain: c_int, ty: c_int, protocol: c_int) -> c_int;
        pub fn connect(fd: c_int, addr: *const c_void, len: u32) -> c_int;
        pub fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
        pub fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
        pub fn close(fd: c_int) -> c_int;
    }
}

/// Which readiness to watch a registered fd for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Report when the fd has readable input (or a hangup/error).
    pub readable: bool,
    /// Report when the fd accepts writes without blocking.
    pub writable: bool,
}

impl Interest {
    /// Readable only.
    pub const READABLE: Interest = Interest {
        readable: true,
        writable: false,
    };
    /// Writable only.
    pub const WRITABLE: Interest = Interest {
        readable: false,
        writable: true,
    };
    /// Readable and writable.
    pub const BOTH: Interest = Interest {
        readable: true,
        writable: true,
    };

    fn mask(self) -> u32 {
        let mut mask = sys::EPOLLRDHUP;
        if self.readable {
            mask |= sys::EPOLLIN;
        }
        if self.writable {
            mask |= sys::EPOLLOUT;
        }
        mask
    }
}

/// One readiness event from [`Poller::wait`].
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The key the fd was registered under.
    pub key: u64,
    /// Input is available, the peer hung up, or the fd errored (a read will
    /// surface the condition without blocking).
    pub readable: bool,
    /// The fd accepts writes (or errored; a write surfaces the condition).
    pub writable: bool,
}

/// An epoll instance with an internal event buffer.
pub struct Poller {
    epfd: RawFd,
    buf: Vec<sys::EpollEvent>,
}

impl std::fmt::Debug for Poller {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Poller").field("epfd", &self.epfd).finish()
    }
}

impl Poller {
    /// Creates a poller.
    pub fn new() -> io::Result<Poller> {
        // SAFETY: plain syscall; the returned fd is owned by the Poller.
        let epfd = unsafe { sys::epoll_create1(sys::EPOLL_CLOEXEC) };
        if epfd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Poller {
            epfd,
            buf: vec![sys::EpollEvent { events: 0, data: 0 }; 1024],
        })
    }

    fn ctl(&self, op: i32, fd: RawFd, key: u64, interest: Interest) -> io::Result<()> {
        let mut ev = sys::EpollEvent {
            events: interest.mask(),
            data: key,
        };
        // SAFETY: `ev` outlives the call; the kernel copies it.
        let rc = unsafe { sys::epoll_ctl(self.epfd, op, fd, &mut ev) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    /// Starts watching `fd` under `key` (level-triggered).
    pub fn register(&self, fd: RawFd, key: u64, interest: Interest) -> io::Result<()> {
        self.ctl(sys::EPOLL_CTL_ADD, fd, key, interest)
    }

    /// Changes the interest set of a registered fd.
    pub fn modify(&self, fd: RawFd, key: u64, interest: Interest) -> io::Result<()> {
        self.ctl(sys::EPOLL_CTL_MOD, fd, key, interest)
    }

    /// Stops watching a registered fd. (Closing the fd deregisters it too;
    /// this exists for fds that outlive their registration.)
    pub fn deregister(&self, fd: RawFd) -> io::Result<()> {
        self.ctl(sys::EPOLL_CTL_DEL, fd, 0, Interest::READABLE)
    }

    /// Blocks until at least one registered fd is ready, the timeout
    /// elapses (`None` = forever), or a [`Waker`] fires; appends the events
    /// to `out` and returns how many were appended. A zero timeout polls.
    /// Interrupted waits (`EINTR`) return `Ok(0)`.
    pub fn wait(&mut self, out: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<usize> {
        let timeout_ms: i32 = match timeout {
            None => -1,
            Some(d) => {
                // Round up so a sub-millisecond timer wait does not spin.
                let ms = d.as_millis();
                let ms = if d.subsec_millis() as u128 * 1_000_000 != d.subsec_nanos() as u128 {
                    ms + 1
                } else {
                    ms
                };
                ms.min(i32::MAX as u128) as i32
            }
        };
        // SAFETY: the buffer is owned, correctly sized, and only read up to
        // the count the kernel reports.
        let n = unsafe {
            sys::epoll_wait(
                self.epfd,
                self.buf.as_mut_ptr(),
                self.buf.len() as i32,
                timeout_ms,
            )
        };
        if n < 0 {
            let err = io::Error::last_os_error();
            if err.kind() == io::ErrorKind::Interrupted {
                return Ok(0);
            }
            return Err(err);
        }
        for ev in &self.buf[..n as usize] {
            let events = ev.events;
            out.push(Event {
                key: ev.data,
                readable: events & (sys::EPOLLIN | sys::EPOLLHUP | sys::EPOLLERR | sys::EPOLLRDHUP)
                    != 0,
                writable: events & (sys::EPOLLOUT | sys::EPOLLHUP | sys::EPOLLERR) != 0,
            });
        }
        Ok(n as usize)
    }
}

impl Drop for Poller {
    fn drop(&mut self) {
        // SAFETY: the fd is owned and closed exactly once.
        unsafe { sys::close(self.epfd) };
    }
}

/// An eventfd-backed wakeup handle: any thread can unblock a
/// [`Poller::wait`] that watches it. Register [`Waker::fd`] with readable
/// interest; after a wakeup, [`Waker::drain`] resets it.
#[derive(Debug)]
pub struct Waker {
    fd: RawFd,
}

impl Waker {
    /// Creates a waker.
    pub fn new() -> io::Result<Waker> {
        // SAFETY: plain syscall; the returned fd is owned by the Waker.
        let fd = unsafe { sys::eventfd(0, sys::EFD_NONBLOCK | sys::EFD_CLOEXEC) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Waker { fd })
    }

    /// The fd to register with the poller.
    pub fn fd(&self) -> RawFd {
        self.fd
    }

    /// Makes the waker readable, unblocking a poller watching it. Safe from
    /// any thread; saturation (`EAGAIN`) is already-woken and ignored.
    pub fn wake(&self) {
        let one: u64 = 1;
        // SAFETY: writes 8 owned bytes; eventfd semantics.
        unsafe {
            sys::write(
                self.fd,
                (&one as *const u64).cast(),
                std::mem::size_of::<u64>(),
            )
        };
    }

    /// Consumes pending wakeups so the fd stops reporting readable.
    pub fn drain(&self) {
        let mut counter: u64 = 0;
        // SAFETY: reads 8 owned bytes; non-blocking, EAGAIN ends the drain.
        unsafe {
            sys::read(
                self.fd,
                (&mut counter as *mut u64).cast(),
                std::mem::size_of::<u64>(),
            )
        };
    }
}

impl Drop for Waker {
    fn drop(&mut self) {
        // SAFETY: the fd is owned and closed exactly once.
        unsafe { sys::close(self.fd) };
    }
}

// SAFETY: the waker is a plain fd; eventfd writes are atomic across threads.
unsafe impl Send for Waker {}
unsafe impl Sync for Waker {}

/// Starts a TCP connect without blocking: returns a non-blocking
/// `TcpStream` whose connect is complete or in progress. Completion is
/// observed by polling the stream writable and checking
/// `TcpStream::take_error()`.
pub fn connect_nonblocking(addr: SocketAddr) -> io::Result<TcpStream> {
    let family = match addr {
        SocketAddr::V4(_) => sys::AF_INET,
        SocketAddr::V6(_) => sys::AF_INET6,
    };
    // SAFETY: plain syscall; on success the fd is owned below.
    let fd = unsafe {
        sys::socket(
            family,
            sys::SOCK_STREAM | sys::SOCK_NONBLOCK | sys::SOCK_CLOEXEC,
            0,
        )
    };
    if fd < 0 {
        return Err(io::Error::last_os_error());
    }
    let rc = match addr {
        SocketAddr::V4(v4) => {
            let sa = sys::SockAddrIn {
                family: sys::AF_INET as u16,
                port: v4.port().to_be(),
                addr: u32::from(*v4.ip()).to_be(),
                zero: [0; 8],
            };
            // SAFETY: `sa` is a correctly laid out sockaddr_in outliving
            // the call.
            unsafe {
                sys::connect(
                    fd,
                    (&sa as *const sys::SockAddrIn).cast(),
                    std::mem::size_of::<sys::SockAddrIn>() as u32,
                )
            }
        }
        SocketAddr::V6(v6) => {
            let sa = sys::SockAddrIn6 {
                family: sys::AF_INET6 as u16,
                port: v6.port().to_be(),
                flowinfo: v6.flowinfo().to_be(),
                addr: v6.ip().octets(),
                scope_id: v6.scope_id().to_be(),
            };
            // SAFETY: `sa` is a correctly laid out sockaddr_in6 outliving
            // the call.
            unsafe {
                sys::connect(
                    fd,
                    (&sa as *const sys::SockAddrIn6).cast(),
                    std::mem::size_of::<sys::SockAddrIn6>() as u32,
                )
            }
        }
    };
    if rc != 0 {
        let err = io::Error::last_os_error();
        if err.raw_os_error() != Some(sys::EINPROGRESS) {
            // SAFETY: the fd is owned and not yet wrapped; close it here.
            unsafe { sys::close(fd) };
            return Err(err);
        }
    }
    // SAFETY: `fd` is a valid, owned socket fd transferred to the stream.
    Ok(unsafe { TcpStream::from_raw_fd(fd) })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::TcpListener;
    use std::os::fd::AsRawFd;

    #[test]
    fn waker_unblocks_wait_and_drains() {
        let mut poller = Poller::new().unwrap();
        let waker = std::sync::Arc::new(Waker::new().unwrap());
        poller.register(waker.fd(), 7, Interest::READABLE).unwrap();

        // Nothing pending: a short wait times out empty.
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert!(events.is_empty());

        // A wake from another thread unblocks the wait.
        let remote = waker.clone();
        let t = std::thread::spawn(move || remote.wake());
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        t.join().unwrap();
        assert!(events.iter().any(|e| e.key == 7 && e.readable));

        // Level-triggered: still readable until drained.
        events.clear();
        poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert!(events.iter().any(|e| e.key == 7));
        waker.drain();
        events.clear();
        poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert!(events.is_empty());
    }

    #[test]
    fn nonblocking_connect_completes_and_carries_bytes() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut stream = connect_nonblocking(addr).unwrap();

        let mut poller = Poller::new().unwrap();
        poller
            .register(stream.as_raw_fd(), 1, Interest::WRITABLE)
            .unwrap();
        let mut events = Vec::new();
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        let connected = loop {
            events.clear();
            poller
                .wait(&mut events, Some(Duration::from_millis(100)))
                .unwrap();
            if events.iter().any(|e| e.key == 1 && e.writable) {
                break stream.take_error().unwrap().is_none();
            }
            if std::time::Instant::now() > deadline {
                break false;
            }
        };
        assert!(connected, "non-blocking connect never completed");

        let (mut accepted, _) = listener.accept().unwrap();
        stream.write_all(b"ping").unwrap();
        let mut buf = [0u8; 4];
        accepted.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"ping");
    }

    #[test]
    fn connect_to_dead_port_reports_an_error_on_completion() {
        // Bind-then-drop: the port is (almost certainly) unbound now.
        let dead = {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap()
        };
        let stream = match connect_nonblocking(dead) {
            Ok(s) => s,
            // An immediate refusal is also a correct outcome.
            Err(_) => return,
        };
        let mut poller = Poller::new().unwrap();
        poller
            .register(stream.as_raw_fd(), 1, Interest::WRITABLE)
            .unwrap();
        let mut events = Vec::new();
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        loop {
            events.clear();
            poller
                .wait(&mut events, Some(Duration::from_millis(100)))
                .unwrap();
            if events.iter().any(|e| e.key == 1) {
                assert!(
                    stream.take_error().unwrap().is_some(),
                    "connect to a dead port reported success"
                );
                return;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "refused connect never reported"
            );
        }
    }
}
