//! Vendored minimal property-testing harness (offline stand-in for the
//! `proptest` crate).
//!
//! Supports the subset this workspace uses: the [`proptest!`] macro over
//! functions whose arguments are drawn from range strategies or
//! [`collection::vec`], a [`ProptestConfig`] with a case count, and the
//! `prop_assert*` macros. Inputs are drawn from a deterministic ChaCha RNG
//! (per-test fixed seed), so failures are reproducible; there is no
//! shrinking.

#![forbid(unsafe_code)]

/// Re-export used by the macros; not part of the public API.
pub use rand as __rand;

use rand::Rng;

/// The RNG driving input generation.
pub type TestRng = rand_chacha::ChaCha8Rng;

/// Configuration for a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated input cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` inputs per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A source of random test inputs.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;
    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                // Sampled inclusively: `end + 1` would overflow for ranges
                // ending at the type's maximum (e.g. `0u8..=255`).
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

/// Strategy producing a fixed value (proptest's `Just`).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Strategy for `Vec`s with element strategy `S` and a length range.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: core::ops::Range<usize>,
    }

    /// Produces vectors whose length is drawn from `len` and whose elements
    /// are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.len.clone());
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! Everything a `proptest!` user needs in scope.
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
    };
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs `body` for many generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr) $( $(#[$meta:meta])* fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                // Fixed per-test seed: deterministic, reproducible runs.
                let mut __rng = <$crate::TestRng as $crate::__rand::SeedableRng>::seed_from_u64(
                    0x70726f70u64 ^ (stringify!($name).len() as u64) << 32,
                );
                for __case in 0..__cfg.cases {
                    let _ = __case;
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                    $body
                }
            }
        )*
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..10, y in 0u64..5) {
            prop_assert!((3..10).contains(&x));
            prop_assert!(y < 5);
        }

        #[test]
        fn vectors_respect_length(v in crate::collection::vec(0u64..100, 1..20)) {
            prop_assert!(!v.is_empty() && v.len() < 20);
            prop_assert!(v.iter().all(|&e| e < 100));
        }
    }
}
