//! Vendored, dependency-free subset of the `rand` crate API.
//!
//! The build container has no access to crates.io, so this workspace vendors
//! the small slice of `rand` it actually uses: the [`RngCore`] /
//! [`SeedableRng`] / [`Rng`] traits, uniform range sampling, and the
//! [`seq::SliceRandom`] shuffle/choose helpers. Algorithms are
//! deterministic and self-consistent; they do not promise bit-compatibility
//! with the real crate (nothing in this workspace depends on that).

#![forbid(unsafe_code)]

/// The core of a random number generator: a source of random words.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator that can be instantiated from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// The seed type (a byte array).
    type Seed: Default + AsMut<[u8]>;

    /// Creates a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64`, expanding it with SplitMix64 —
    /// the same convention the real `rand` crate uses.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// Types that can be produced uniformly from raw generator output via
/// `Rng::gen` (the `Standard` distribution of the real crate).
pub trait StandardSample {
    /// Draws one value from `rng`.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardSample for u128 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl StandardSample for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges that `Rng::gen_range` accepts.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end - self.start) as u64;
                // Debiased multiply-shift (Lemire); span is < 2^64 here.
                let zone = u64::MAX - (u64::MAX - span + 1) % span;
                loop {
                    let v = rng.next_u64();
                    if v <= zone {
                        return self.start + (v % span) as $t;
                    }
                }
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                // The inclusive span is computed in u128 so ranges ending at
                // the type's maximum (`0u8..=255`, `5u64..=u64::MAX`, …)
                // never overflow.
                let span = (end as u128) - (start as u128) + 1;
                if span > u64::MAX as u128 {
                    // Only the full u64/usize domain reaches here.
                    return rng.next_u64() as $t;
                }
                let span = span as u64;
                let zone = u64::MAX - (u64::MAX - span + 1) % span;
                loop {
                    let v = rng.next_u64();
                    if v <= zone {
                        return start.wrapping_add((v % span) as $t);
                    }
                }
            }
        }
    )*};
}
impl_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_range_int {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as $u).wrapping_sub(self.start as $u);
                let drawn = (0..span).sample_single(rng);
                (self.start as $u).wrapping_add(drawn) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as $u).wrapping_sub(start as $u);
                let drawn = ((0 as $u)..=span).sample_single(rng);
                (start as $u).wrapping_add(drawn) as $t
            }
        }
    )*};
}

impl_range_int!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + f64::standard_sample(rng) * (self.end - self.start)
    }
}

/// Convenience extension over [`RngCore`]: typed draws.
pub trait Rng: RngCore {
    /// Draws a value of type `T` from the standard distribution.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::standard_sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        f64::standard_sample(self) < p
    }

    /// Returns `true` with probability `numerator / denominator`.
    fn gen_ratio(&mut self, numerator: u32, denominator: u32) -> bool {
        assert!(numerator <= denominator);
        self.gen_range(0..denominator) < numerator
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod seq {
    //! Sequence-related helpers: shuffling and random element choice.

    use super::{Rng, RngCore};

    /// Extension trait for slices, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly chosen reference, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Returns a uniformly chosen mutable reference, or `None` if empty.
        fn choose_mut<R: RngCore + ?Sized>(&mut self, rng: &mut R) -> Option<&mut Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }

        fn choose_mut<R: RngCore + ?Sized>(&mut self, rng: &mut R) -> Option<&mut T> {
            if self.is_empty() {
                None
            } else {
                let i = rng.gen_range(0..self.len());
                self.get_mut(i)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    struct Lcg(u64);
    impl RngCore for Lcg {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = Lcg(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3u64..17);
            assert!((3..17).contains(&v));
            let u = rng.gen_range(0usize..5);
            assert!(u < 5);
            let b = rng.gen_range(0..100u8);
            assert!(b < 100);
        }
    }

    #[test]
    fn gen_range_covers_all_values() {
        let mut rng = Lcg(11);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Lcg(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn gen_bool_is_roughly_calibrated() {
        let mut rng = Lcg(5);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits {hits}");
    }
}
