//! Vendored ChaCha random number generators (offline stand-in for the
//! `rand_chacha` crate).
//!
//! Implements the ChaCha stream-cipher core (D. J. Bernstein) as a
//! deterministic RNG. Seeded identically it always produces the same
//! stream; it does not promise bit-compatibility with the real
//! `rand_chacha` crate (nothing in this workspace depends on that).

#![forbid(unsafe_code)]

use rand::{RngCore, SeedableRng};

macro_rules! chacha_rng {
    ($(#[$meta:meta])* $name:ident, $rounds:expr) => {
        $(#[$meta])*
        #[derive(Clone, Debug)]
        pub struct $name {
            key: [u32; 8],
            counter: u64,
            buffer: [u32; 16],
            index: usize,
        }

        impl $name {
            fn refill(&mut self) {
                const SIGMA: [u32; 4] = [0x61707865, 0x3320646e, 0x79622d32, 0x6b206574];
                let mut x = [0u32; 16];
                x[0..4].copy_from_slice(&SIGMA);
                x[4..12].copy_from_slice(&self.key);
                x[12] = self.counter as u32;
                x[13] = (self.counter >> 32) as u32;
                x[14] = 0;
                x[15] = 0;
                let input = x;
                for _ in 0..($rounds / 2) {
                    // Column round.
                    quarter(&mut x, 0, 4, 8, 12);
                    quarter(&mut x, 1, 5, 9, 13);
                    quarter(&mut x, 2, 6, 10, 14);
                    quarter(&mut x, 3, 7, 11, 15);
                    // Diagonal round.
                    quarter(&mut x, 0, 5, 10, 15);
                    quarter(&mut x, 1, 6, 11, 12);
                    quarter(&mut x, 2, 7, 8, 13);
                    quarter(&mut x, 3, 4, 9, 14);
                }
                for i in 0..16 {
                    self.buffer[i] = x[i].wrapping_add(input[i]);
                }
                self.counter = self.counter.wrapping_add(1);
                self.index = 0;
            }
        }

        impl SeedableRng for $name {
            type Seed = [u8; 32];

            fn from_seed(seed: [u8; 32]) -> Self {
                let mut key = [0u32; 8];
                for (i, chunk) in seed.chunks_exact(4).enumerate() {
                    key[i] = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
                }
                let mut rng = $name {
                    key,
                    counter: 0,
                    buffer: [0u32; 16],
                    index: 16,
                };
                rng.refill();
                rng.index = 0;
                rng
            }
        }

        impl RngCore for $name {
            fn next_u32(&mut self) -> u32 {
                if self.index >= 16 {
                    self.refill();
                }
                let w = self.buffer[self.index];
                self.index += 1;
                w
            }

            fn next_u64(&mut self) -> u64 {
                let lo = self.next_u32() as u64;
                let hi = self.next_u32() as u64;
                (hi << 32) | lo
            }
        }
    };
}

#[inline]
fn quarter(x: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    x[a] = x[a].wrapping_add(x[b]);
    x[d] = (x[d] ^ x[a]).rotate_left(16);
    x[c] = x[c].wrapping_add(x[d]);
    x[b] = (x[b] ^ x[c]).rotate_left(12);
    x[a] = x[a].wrapping_add(x[b]);
    x[d] = (x[d] ^ x[a]).rotate_left(8);
    x[c] = x[c].wrapping_add(x[d]);
    x[b] = (x[b] ^ x[c]).rotate_left(7);
}

chacha_rng!(
    /// ChaCha with 8 rounds: the fast profile used throughout the workspace.
    ChaCha8Rng,
    8
);
chacha_rng!(
    /// ChaCha with 12 rounds.
    ChaCha12Rng,
    12
);
chacha_rng!(
    /// ChaCha with 20 rounds (the original cipher strength).
    ChaCha20Rng,
    20
);

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..100).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn blocks_advance() {
        let mut a = ChaCha8Rng::seed_from_u64(9);
        let first: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let second: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        assert_ne!(first, second);
    }

    #[test]
    fn uniformity_smoke() {
        let mut rng = ChaCha8Rng::seed_from_u64(123);
        let mut buckets = [0u32; 16];
        for _ in 0..16_000 {
            buckets[rng.gen_range(0usize..16)] += 1;
        }
        for &b in &buckets {
            assert!((800..1200).contains(&b), "bucket {b}");
        }
    }
}
