//! Vendored minimal serialization framework (offline stand-in for `serde`).
//!
//! The build container cannot reach crates.io, so this workspace ships a
//! small, genuinely functional replacement: types convert to and from a
//! self-describing [`Value`] tree, and the companion `serde_json` crate
//! renders that tree as real JSON text. The companion `serde_derive` crate
//! provides `#[derive(Serialize, Deserialize)]` for structs and enums.
//!
//! The data model is intentionally simpler than real serde's (no visitors,
//! no zero-copy); round-trip fidelity is what the workspace needs and what
//! is tested.

#![forbid(unsafe_code)]

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet, VecDeque};
use std::fmt;
use std::hash::Hash;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// A self-describing serialized value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Absent / unit.
    Null,
    /// A boolean.
    Bool(bool),
    /// An unsigned integer.
    U64(u64),
    /// A signed (negative) integer.
    I64(i64),
    /// A floating-point number.
    F64(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Seq(Vec<Value>),
    /// An ordered string-keyed map (also used for struct fields and enum
    /// variant tagging).
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Returns the map entries if this is a map.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(entries) => Some(entries),
            _ => None,
        }
    }

    /// Returns the sequence elements if this is a sequence.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(items) => Some(items),
            _ => None,
        }
    }

    /// Returns the string if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    /// Creates an error with the given message.
    pub fn custom(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }

    /// Creates a "expected X" type-mismatch error.
    pub fn expected(what: &str) -> Self {
        Error {
            message: format!("expected {what}"),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

/// Looks up a required struct field in a serialized map.
pub fn field<'a>(entries: &'a [(String, Value)], name: &str) -> Result<&'a Value, Error> {
    entries
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .ok_or_else(|| Error::custom(format!("missing field `{name}`")))
}

/// Types that can be converted to a [`Value`].
pub trait Serialize {
    /// Converts `self` to a serialized value tree.
    fn to_value(&self) -> Value;
}

/// Types that can be reconstructed from a [`Value`].
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from a serialized value tree.
    fn from_value(value: &Value) -> Result<Self, Error>;
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::expected("bool")),
        }
    }
}

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let raw = match value {
                    Value::U64(u) => *u,
                    Value::I64(i) if *i >= 0 => *i as u64,
                    _ => return Err(Error::expected(stringify!($t))),
                };
                <$t>::try_from(raw).map_err(|_| Error::expected(stringify!($t)))
            }
        }
    )*};
}
impl_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as i64;
                if v >= 0 {
                    Value::U64(v as u64)
                } else {
                    Value::I64(v)
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let raw: i64 = match value {
                    Value::U64(u) => i64::try_from(*u).map_err(|_| Error::expected(stringify!($t)))?,
                    Value::I64(i) => *i,
                    _ => return Err(Error::expected(stringify!($t))),
                };
                <$t>::try_from(raw).map_err(|_| Error::expected(stringify!($t)))
            }
        }
    )*};
}
impl_int!(i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::F64(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::F64(f) => Ok(*f as $t),
                    Value::U64(u) => Ok(*u as $t),
                    Value::I64(i) => Ok(*i as $t),
                    _ => Err(Error::expected(stringify!($t))),
                }
            }
        }
    )*};
}
impl_float!(f32, f64);

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let s = value.as_str().ok_or_else(|| Error::expected("char"))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::expected("single-char string")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_str()
            .map(str::to_owned)
            .ok_or_else(|| Error::expected("string"))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(v) => {
                let inner = v.to_value();
                // Distinguish Some(Null)-like payloads is unnecessary here:
                // no workspace type nests Option<Option<_>>.
                inner
            }
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}

impl Deserialize for () {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(()),
            _ => Err(Error::expected("null")),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_seq()
            .ok_or_else(|| Error::expected("sequence"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for VecDeque<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for VecDeque<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Vec::<T>::from_value(value).map(VecDeque::from)
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let items = Vec::<T>::from_value(value)?;
        let len = items.len();
        <[T; N]>::try_from(items)
            .map_err(|_| Error::custom(format!("expected array of length {N}, got {len}")))
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        T::from_value(value).map(Box::new)
    }
}

// Shared-ownership containers serialize transparently (like Box); slices
// behind an Arc round-trip through a Vec. Sharing is not preserved across a
// round trip — each deserialized value owns a fresh allocation — which
// matches real serde's behaviour (without its opt-in `rc` feature's caveats).
impl<T: Serialize> Serialize for std::sync::Arc<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for std::sync::Arc<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        T::from_value(value).map(std::sync::Arc::new)
    }
}

impl<T: Serialize> Serialize for std::sync::Arc<[T]> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for std::sync::Arc<[T]> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Vec::<T>::from_value(value).map(std::sync::Arc::from)
    }
}

impl<T: Serialize> Serialize for std::rc::Rc<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for std::rc::Rc<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        T::from_value(value).map(std::rc::Rc::new)
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Seq(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value.as_seq() {
            Some([a, b]) => Ok((A::from_value(a)?, B::from_value(b)?)),
            _ => Err(Error::expected("2-tuple")),
        }
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Seq(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
        ])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value.as_seq() {
            Some([a, b, c]) => Ok((A::from_value(a)?, B::from_value(b)?, C::from_value(c)?)),
            _ => Err(Error::expected("3-tuple")),
        }
    }
}

// Maps serialize as sequences of `[key, value]` pairs so that non-string
// keys (NodeId, VgroupId, …) round-trip without a string conversion.
impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Seq(
            self.iter()
                .map(|(k, v)| Value::Seq(vec![k.to_value(), v.to_value()]))
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Vec::<(K, V)>::from_value(value).map(BTreeMap::from_iter)
    }
}

impl<K: Serialize, V: Serialize> Serialize for HashMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Seq(
            self.iter()
                .map(|(k, v)| Value::Seq(vec![k.to_value(), v.to_value()]))
                .collect(),
        )
    }
}

impl<K: Deserialize + Eq + Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Vec::<(K, V)>::from_value(value).map(HashMap::from_iter)
    }
}

impl<T: Serialize> Serialize for BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Vec::<T>::from_value(value).map(BTreeSet::from_iter)
    }
}

impl<T: Serialize> Serialize for HashSet<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Eq + Hash> Deserialize for HashSet<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Vec::<T>::from_value(value).map(HashSet::from_iter)
    }
}

impl Serialize for std::time::Duration {
    fn to_value(&self) -> Value {
        Value::Seq(vec![
            Value::U64(self.as_secs()),
            Value::U64(self.subsec_nanos() as u64),
        ])
    }
}

impl Deserialize for std::time::Duration {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let (secs, nanos) = <(u64, u32)>::from_value(value)?;
        Ok(std::time::Duration::new(secs, nanos))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u32::from_value(&42u32.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-7i64).to_value()).unwrap(), -7);
        assert_eq!(f64::from_value(&2.5f64.to_value()).unwrap(), 2.5);
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
        assert!(bool::from_value(&true.to_value()).unwrap());
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![1u64, 2, 3];
        assert_eq!(Vec::<u64>::from_value(&v.to_value()).unwrap(), v);

        let mut m = BTreeMap::new();
        m.insert(10u64, "a".to_string());
        m.insert(20u64, "b".to_string());
        assert_eq!(
            BTreeMap::<u64, String>::from_value(&m.to_value()).unwrap(),
            m
        );

        let arr = [5u8; 4];
        assert_eq!(<[u8; 4]>::from_value(&arr.to_value()).unwrap(), arr);

        let opt: Option<u64> = Some(9);
        assert_eq!(Option::<u64>::from_value(&opt.to_value()).unwrap(), opt);
        let none: Option<u64> = None;
        assert_eq!(Option::<u64>::from_value(&none.to_value()).unwrap(), none);
    }

    #[test]
    fn shared_pointers_round_trip() {
        use std::sync::Arc;
        let boxed: Arc<u64> = Arc::new(9);
        assert_eq!(Arc::<u64>::from_value(&boxed.to_value()).unwrap(), boxed);
        let slice: Arc<[u64]> = vec![1u64, 2, 3].into();
        let back = Arc::<[u64]>::from_value(&slice.to_value()).unwrap();
        assert_eq!(&back[..], &slice[..]);
        let empty: Arc<[u64]> = Vec::new().into();
        let back = Arc::<[u64]>::from_value(&empty.to_value()).unwrap();
        assert!(back.is_empty());
    }

    #[test]
    fn wrong_type_errors() {
        assert!(u8::from_value(&Value::Str("x".into())).is_err());
        assert!(u8::from_value(&Value::U64(300)).is_err());
        assert!(Vec::<u64>::from_value(&Value::Bool(true)).is_err());
    }
}
