//! Vendored `#[derive(Serialize, Deserialize)]` for the minimal serde
//! stand-in in `vendor/serde`.
//!
//! The build container cannot reach crates.io, so this derive is written
//! against `proc_macro` alone (no `syn`/`quote`): it hand-parses the item
//! token stream far enough to learn the type's shape (named/tuple/unit
//! struct, enum variants, generic parameters) and emits `to_value` /
//! `from_value` implementations over the [`serde::Value`] tree model.
//!
//! Supported shapes — everything this workspace derives on:
//! structs with named fields, tuple structs (including newtypes), unit
//! structs, and enums whose variants are unit, tuple or struct-like,
//! with optional type parameters (bounds are carried over).

#![forbid(unsafe_code)]

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` (the vendored mini-serde trait).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    generate_serialize(&item)
        .parse()
        .expect("generated Serialize impl must parse")
}

/// Derives `serde::Deserialize` (the vendored mini-serde trait).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    generate_deserialize(&item)
        .parse()
        .expect("generated Deserialize impl must parse")
}

struct GenericParam {
    name: String,
    bounds: String,
}

struct Item {
    name: String,
    generics: Vec<GenericParam>,
    kind: Kind,
}

enum Kind {
    UnitStruct,
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    fields: VariantFields,
}

enum VariantFields {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

fn is_punct(tok: &TokenTree, ch: char) -> bool {
    matches!(tok, TokenTree::Punct(p) if p.as_char() == ch)
}

fn is_group(tok: &TokenTree, delim: Delimiter) -> bool {
    matches!(tok, TokenTree::Group(g) if g.delimiter() == delim)
}

/// Advances past any `#[...]` attributes (including doc comments, which
/// reach the macro as `#[doc = "..."]`).
fn skip_attributes(toks: &[TokenTree], mut i: usize) -> usize {
    while i < toks.len() && is_punct(&toks[i], '#') {
        i += 1;
        if i < toks.len() && is_group(&toks[i], Delimiter::Bracket) {
            i += 1;
        }
    }
    i
}

fn parse_item(input: TokenStream) -> Item {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attributes(&toks, 0);

    // Visibility: `pub`, optionally followed by `(crate)` etc.
    if matches!(&toks[i], TokenTree::Ident(id) if id.to_string() == "pub") {
        i += 1;
        if i < toks.len() && is_group(&toks[i], Delimiter::Parenthesis) {
            i += 1;
        }
    }

    let item_kind = match &toks[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("derive: expected `struct` or `enum`, found {other}"),
    };
    i += 1;
    let name = match &toks[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("derive: expected type name, found {other}"),
    };
    i += 1;

    // Generic parameters.
    let mut generics = Vec::new();
    if i < toks.len() && is_punct(&toks[i], '<') {
        i += 1;
        let mut depth = 1usize;
        while i < toks.len() && depth > 0 {
            if is_punct(&toks[i], '<') {
                depth += 1;
                i += 1;
            } else if is_punct(&toks[i], '>') {
                depth -= 1;
                i += 1;
            } else if depth == 1 {
                match &toks[i] {
                    TokenTree::Ident(id) if id.to_string() == "const" => {
                        panic!("derive: const generics are not supported")
                    }
                    TokenTree::Punct(p) if p.as_char() == '\'' => {
                        panic!("derive: lifetime parameters are not supported")
                    }
                    TokenTree::Ident(id) => {
                        let pname = id.to_string();
                        i += 1;
                        let mut bounds = String::new();
                        if i < toks.len() && is_punct(&toks[i], ':') {
                            i += 1;
                            let mut bdepth = 0usize;
                            while i < toks.len() {
                                if is_punct(&toks[i], '<') {
                                    bdepth += 1;
                                } else if is_punct(&toks[i], '>') {
                                    if bdepth == 0 {
                                        break;
                                    }
                                    bdepth -= 1;
                                } else if bdepth == 0 && is_punct(&toks[i], ',') {
                                    break;
                                }
                                bounds.push_str(&toks[i].to_string());
                                bounds.push(' ');
                                i += 1;
                            }
                        }
                        generics.push(GenericParam {
                            name: pname,
                            bounds,
                        });
                        if i < toks.len() && is_punct(&toks[i], ',') {
                            i += 1;
                        }
                    }
                    other => panic!("derive: unexpected token in generics: {other}"),
                }
            } else {
                i += 1;
            }
        }
    }

    // Optional where clause: skip until the body.
    if i < toks.len() && matches!(&toks[i], TokenTree::Ident(id) if id.to_string() == "where") {
        while i < toks.len() && !is_group(&toks[i], Delimiter::Brace) && !is_punct(&toks[i], ';') {
            i += 1;
        }
    }

    let kind = if item_kind == "struct" {
        if i >= toks.len() || is_punct(&toks[i], ';') {
            Kind::UnitStruct
        } else if is_group(&toks[i], Delimiter::Brace) {
            match &toks[i] {
                TokenTree::Group(g) => Kind::NamedStruct(parse_named_fields(g.stream())),
                _ => unreachable!(),
            }
        } else if is_group(&toks[i], Delimiter::Parenthesis) {
            match &toks[i] {
                TokenTree::Group(g) => Kind::TupleStruct(count_tuple_fields(g.stream())),
                _ => unreachable!(),
            }
        } else {
            panic!("derive: malformed struct body")
        }
    } else if item_kind == "enum" {
        match &toks[i] {
            TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => {
                Kind::Enum(parse_variants(g.stream()))
            }
            other => panic!("derive: expected enum body, found {other}"),
        }
    } else {
        panic!("derive: only structs and enums are supported, found `{item_kind}`")
    };

    Item {
        name,
        generics,
        kind,
    }
}

/// Extracts the field names of a named-field body (`{ a: T, b: U }`).
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        i = skip_attributes(&toks, i);
        if i >= toks.len() {
            break;
        }
        if matches!(&toks[i], TokenTree::Ident(id) if id.to_string() == "pub") {
            i += 1;
            if i < toks.len() && is_group(&toks[i], Delimiter::Parenthesis) {
                i += 1;
            }
        }
        match &toks[i] {
            TokenTree::Ident(id) => fields.push(id.to_string()),
            other => panic!("derive: expected field name, found {other}"),
        }
        i += 1;
        // Skip `: Type` up to the next top-level comma.
        let mut depth = 0usize;
        while i < toks.len() {
            if is_punct(&toks[i], '<') {
                depth += 1;
            } else if is_punct(&toks[i], '>') {
                depth = depth.saturating_sub(1);
            } else if depth == 0 && is_punct(&toks[i], ',') {
                i += 1;
                break;
            }
            i += 1;
        }
    }
    fields
}

/// Counts the fields of a tuple body (`(T, U)`).
fn count_tuple_fields(stream: TokenStream) -> usize {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    if toks.is_empty() {
        return 0;
    }
    let mut count = 1usize;
    let mut depth = 0usize;
    let mut saw_token_since_comma = false;
    for tok in &toks {
        if is_punct(tok, '<') {
            depth += 1;
        } else if is_punct(tok, '>') {
            depth = depth.saturating_sub(1);
        } else if depth == 0 && is_punct(tok, ',') {
            saw_token_since_comma = false;
            count += 1;
            continue;
        }
        saw_token_since_comma = true;
    }
    if !saw_token_since_comma {
        count -= 1; // trailing comma
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        i = skip_attributes(&toks, i);
        if i >= toks.len() {
            break;
        }
        let name = match &toks[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("derive: expected variant name, found {other}"),
        };
        i += 1;
        let mut fields = VariantFields::Unit;
        if i < toks.len() {
            if let TokenTree::Group(g) = &toks[i] {
                match g.delimiter() {
                    Delimiter::Parenthesis => {
                        fields = VariantFields::Tuple(count_tuple_fields(g.stream()));
                        i += 1;
                    }
                    Delimiter::Brace => {
                        fields = VariantFields::Named(parse_named_fields(g.stream()));
                        i += 1;
                    }
                    _ => {}
                }
            }
        }
        // Skip an explicit discriminant (`= expr`) up to the next comma.
        while i < toks.len() && !is_punct(&toks[i], ',') {
            i += 1;
        }
        if i < toks.len() {
            i += 1; // the comma
        }
        variants.push(Variant { name, fields });
    }
    variants
}

/// Renders `impl<...>` generics with an extra trait bound per type param,
/// and the `<...>` type-argument list.
fn render_generics(item: &Item, extra_bound: &str) -> (String, String) {
    if item.generics.is_empty() {
        return (String::new(), String::new());
    }
    let impl_params: Vec<String> = item
        .generics
        .iter()
        .map(|p| {
            if p.bounds.trim().is_empty() {
                format!("{}: {extra_bound}", p.name)
            } else {
                format!("{}: {} + {extra_bound}", p.name, p.bounds)
            }
        })
        .collect();
    let ty_params: Vec<String> = item.generics.iter().map(|p| p.name.clone()).collect();
    (
        format!("<{}>", impl_params.join(", ")),
        format!("<{}>", ty_params.join(", ")),
    )
}

fn generate_serialize(item: &Item) -> String {
    let (impl_generics, ty_generics) = render_generics(item, "serde::Serialize");
    let name = &item.name;
    let body = match &item.kind {
        Kind::UnitStruct => "serde::Value::Null".to_string(),
        Kind::NamedStruct(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect();
            format!("serde::Value::Map(::std::vec![{}])", entries.join(", "))
        }
        Kind::TupleStruct(1) => "serde::Serialize::to_value(&self.0)".to_string(),
        Kind::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|k| format!("serde::Serialize::to_value(&self.{k})"))
                .collect();
            format!("serde::Value::Seq(::std::vec![{}])", items.join(", "))
        }
        Kind::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.fields {
                        VariantFields::Unit => format!(
                            "{name}::{vname} => serde::Value::Str(::std::string::String::from(\"{vname}\")),"
                        ),
                        VariantFields::Tuple(1) => format!(
                            "{name}::{vname}(__f0) => serde::Value::Map(::std::vec![(::std::string::String::from(\"{vname}\"), serde::Serialize::to_value(__f0))]),"
                        ),
                        VariantFields::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|k| format!("__f{k}")).collect();
                            let items: Vec<String> = (0..*n)
                                .map(|k| format!("serde::Serialize::to_value(__f{k})"))
                                .collect();
                            format!(
                                "{name}::{vname}({}) => serde::Value::Map(::std::vec![(::std::string::String::from(\"{vname}\"), serde::Value::Seq(::std::vec![{}]))]),",
                                binds.join(", "),
                                items.join(", ")
                            )
                        }
                        VariantFields::Named(fields) => {
                            let binds = fields.join(", ");
                            let entries: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(::std::string::String::from(\"{f}\"), serde::Serialize::to_value({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vname} {{ {binds} }} => serde::Value::Map(::std::vec![(::std::string::String::from(\"{vname}\"), serde::Value::Map(::std::vec![{}]))]),",
                                entries.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "impl{impl_generics} serde::Serialize for {name}{ty_generics} {{\n\
             fn to_value(&self) -> serde::Value {{ {body} }}\n\
         }}"
    )
}

fn generate_deserialize(item: &Item) -> String {
    let (impl_generics, ty_generics) = render_generics(item, "serde::Deserialize");
    let name = &item.name;
    let body = match &item.kind {
        Kind::UnitStruct => format!(
            "match __v {{ serde::Value::Null => ::std::result::Result::Ok({name}), _ => ::std::result::Result::Err(serde::Error::expected(\"null\")) }}"
        ),
        Kind::NamedStruct(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!("{f}: serde::Deserialize::from_value(serde::field(__m, \"{f}\")?)?")
                })
                .collect();
            format!(
                "let __m = __v.as_map().ok_or_else(|| serde::Error::expected(\"map for struct {name}\"))?;\n\
                 ::std::result::Result::Ok({name} {{ {} }})",
                inits.join(", ")
            )
        }
        Kind::TupleStruct(1) => {
            format!("::std::result::Result::Ok({name}(serde::Deserialize::from_value(__v)?))")
        }
        Kind::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|k| format!("serde::Deserialize::from_value(&__s[{k}])?"))
                .collect();
            format!(
                "let __s = __v.as_seq().ok_or_else(|| serde::Error::expected(\"sequence for struct {name}\"))?;\n\
                 if __s.len() != {n} {{ return ::std::result::Result::Err(serde::Error::expected(\"{n} tuple fields\")); }}\n\
                 ::std::result::Result::Ok({name}({}))",
                items.join(", ")
            )
        }
        Kind::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.fields, VariantFields::Unit))
                .map(|v| {
                    format!(
                        "\"{0}\" => ::std::result::Result::Ok({name}::{0}),",
                        v.name
                    )
                })
                .collect();
            let data_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vname = &v.name;
                    match &v.fields {
                        VariantFields::Unit => None,
                        VariantFields::Tuple(1) => Some(format!(
                            "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}(serde::Deserialize::from_value(__payload)?)),"
                        )),
                        VariantFields::Tuple(n) => {
                            let items: Vec<String> = (0..*n)
                                .map(|k| format!("serde::Deserialize::from_value(&__s[{k}])?"))
                                .collect();
                            Some(format!(
                                "\"{vname}\" => {{\n\
                                     let __s = __payload.as_seq().ok_or_else(|| serde::Error::expected(\"sequence for variant {vname}\"))?;\n\
                                     if __s.len() != {n} {{ return ::std::result::Result::Err(serde::Error::expected(\"{n} fields for variant {vname}\")); }}\n\
                                     ::std::result::Result::Ok({name}::{vname}({}))\n\
                                 }}",
                                items.join(", ")
                            ))
                        }
                        VariantFields::Named(fields) => {
                            let inits: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "{f}: serde::Deserialize::from_value(serde::field(__m, \"{f}\")?)?"
                                    )
                                })
                                .collect();
                            Some(format!(
                                "\"{vname}\" => {{\n\
                                     let __m = __payload.as_map().ok_or_else(|| serde::Error::expected(\"map for variant {vname}\"))?;\n\
                                     ::std::result::Result::Ok({name}::{vname} {{ {} }})\n\
                                 }}",
                                inits.join(", ")
                            ))
                        }
                    }
                })
                .collect();
            let str_arm = if unit_arms.is_empty() {
                String::new()
            } else {
                format!(
                    "serde::Value::Str(__s) => match __s.as_str() {{ {} _ => ::std::result::Result::Err(serde::Error::custom(::std::format!(\"unknown variant `{{__s}}` of {name}\"))) }},",
                    unit_arms.join(" ")
                )
            };
            let map_arm = if data_arms.is_empty() {
                String::new()
            } else {
                format!(
                    "serde::Value::Map(__entries) if __entries.len() == 1 => {{\n\
                         let (__tag, __payload) = &__entries[0];\n\
                         match __tag.as_str() {{ {} _ => ::std::result::Result::Err(serde::Error::custom(::std::format!(\"unknown variant `{{__tag}}` of {name}\"))) }}\n\
                     }},",
                    data_arms.join(" ")
                )
            };
            format!(
                "match __v {{ {str_arm} {map_arm} _ => ::std::result::Result::Err(serde::Error::expected(\"enum {name}\")) }}"
            )
        }
    };
    format!(
        "impl{impl_generics} serde::Deserialize for {name}{ty_generics} {{\n\
             fn from_value(__v: &serde::Value) -> ::std::result::Result<Self, serde::Error> {{ {body} }}\n\
         }}"
    )
}
