//! Vendored minimal JSON codec (offline stand-in for `serde_json`).
//!
//! Serializes the mini-serde [`serde::Value`] tree to real JSON text and
//! parses it back. Maps serialize as JSON objects; because the mini-serde
//! data model only produces string keys in `Value::Map`, the output is
//! always valid JSON. Numbers are emitted so that they re-parse to the same
//! value (`u64`/`i64` exactly, `f64` via Rust's shortest round-trip
//! formatting).

#![forbid(unsafe_code)]

use serde::{Deserialize, Serialize, Value};
use std::fmt;

/// Error produced by JSON encoding or decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error::new(e.to_string())
    }
}

/// Serializes `value` to a JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value())?;
    Ok(out)
}

/// Serializes `value` to JSON bytes.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    to_string(value).map(String::into_bytes)
}

/// Deserializes a value from a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::new("trailing characters after JSON value"));
    }
    T::from_value(&value).map_err(Error::from)
}

/// Deserializes a value from JSON bytes.
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T, Error> {
    let s = std::str::from_utf8(bytes).map_err(|_| Error::new("invalid UTF-8"))?;
    from_str(s)
}

fn write_value(out: &mut String, value: &Value) -> Result<(), Error> {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::U64(u) => out.push_str(&u.to_string()),
        Value::I64(i) => out.push_str(&i.to_string()),
        Value::F64(f) => {
            if !f.is_finite() {
                return Err(Error::new("cannot serialize non-finite float"));
            }
            // `{:?}` is Rust's shortest round-trip formatting for floats.
            out.push_str(&format!("{f:?}"));
        }
        Value::Str(s) => write_string(out, s),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(out, item)?;
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(out, k);
                out.push(':');
                write_value(out, v)?;
            }
            out.push('}');
        }
    }
    Ok(())
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_seq(),
            Some(b'{') => self.parse_map(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            Some(c) => Err(Error::new(format!(
                "unexpected character `{}` at byte {}",
                c as char, self.pos
            ))),
            None => Err(Error::new("unexpected end of input")),
        }
    }

    fn parse_keyword(&mut self, kw: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(value)
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::U64(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::I64(i));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let rest = &self.bytes[self.pos..];
            let c = *rest
                .first()
                .ok_or_else(|| Error::new("unterminated string"))?;
            match c {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    let esc = *rest
                        .get(1)
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 2;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error::new("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::new("invalid \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by our writer;
                            // accept only BMP scalars here.
                            let c = char::from_u32(code)
                                .ok_or_else(|| Error::new("invalid \\u code point"))?;
                            out.push(c);
                        }
                        other => {
                            return Err(Error::new(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => {
                    // Consume one UTF-8 encoded character.
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| Error::new("invalid UTF-8 in string"))?;
                    let ch = s
                        .chars()
                        .next()
                        .ok_or_else(|| Error::new("unterminated string"))?;
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn parse_seq(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_map(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(from_str::<i32>("-17").unwrap(), -17);
        assert_eq!(from_str::<f64>("2.5").unwrap(), 2.5);
        assert_eq!(from_str::<f64>("1e-3").unwrap(), 1e-3);
        assert!(from_str::<bool>("true").unwrap());
        let f = 0.1f64 + 0.2;
        assert_eq!(from_str::<f64>(&to_string(&f).unwrap()).unwrap(), f);
    }

    #[test]
    fn strings_escape_round_trip() {
        let s = "hello \"world\"\n\\tab\tunicode: ünïcödé \u{1}".to_string();
        let json = to_string(&s).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), s);
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![vec![1u64, 2], vec![3]];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[[1,2],[3]]");
        assert_eq!(from_str::<Vec<Vec<u64>>>(&json).unwrap(), v);

        let opt: Option<u64> = None;
        assert_eq!(to_string(&opt).unwrap(), "null");
        assert_eq!(from_str::<Option<u64>>("null").unwrap(), None);
    }

    #[test]
    fn whitespace_tolerated() {
        assert_eq!(
            from_str::<Vec<u64>>(" [ 1 , 2 ,\n\t3 ] ").unwrap(),
            vec![1, 2, 3]
        );
    }

    #[test]
    fn malformed_input_errors() {
        assert!(from_str::<u64>("").is_err());
        assert!(from_str::<u64>("12abc").is_err());
        assert!(from_str::<Vec<u64>>("[1,").is_err());
        assert!(from_str::<String>("\"open").is_err());
    }
}
