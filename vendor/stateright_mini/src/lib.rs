//! Vendored minimal explicit-state model checker, inspired by the API of the
//! `stateright` crate (which cannot be fetched in this offline build
//! environment). It provides just what the `mcheck` crate needs:
//!
//! * a [`Model`] trait describing a nondeterministic transition system with
//!   canonicalizable states;
//! * a breadth-first [`Checker`] with a depth bound and a visited-state set
//!   keyed by state fingerprints;
//! * *always*-style safety [`Property`]s evaluated on every reachable state;
//! * minimal counterexamples: BFS order guarantees the first violation found
//!   for a property is at the shallowest possible depth, and the checker
//!   reconstructs the action path from an initial state.
//!
//! The checker is single-threaded and fully deterministic: exploration order
//! is the order of [`Model::actions`], and fingerprints use FNV-1a (no
//! per-process hash randomization).

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// A 128-bit FNV-1a hash of a byte string. Used to key the visited-state set:
/// 128 bits make accidental collisions across the few million states a
/// bounded exploration can reach vanishingly unlikely, while avoiding storing
/// full canonical strings.
pub fn fingerprint(bytes: &[u8]) -> u128 {
    const OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
    const PRIME: u128 = 0x0000000001000000000000000000013b;
    let mut hash = OFFSET;
    for &b in bytes {
        hash ^= b as u128;
        hash = hash.wrapping_mul(PRIME);
    }
    hash
}

/// A nondeterministic transition system to explore.
pub trait Model {
    /// One global state of the system. Cloned when branching.
    type State: Clone;
    /// One enabled transition out of a state.
    type Action: Clone + std::fmt::Debug;

    /// The initial state(s) of the system.
    fn init_states(&self) -> Vec<Self::State>;

    /// Appends every action enabled in `state` to `actions`. The exploration
    /// order is the order of this list; it must be deterministic.
    fn actions(&self, state: &Self::State, actions: &mut Vec<Self::Action>);

    /// The state reached by taking `action` in `state`, or `None` if the
    /// action turned out to be a no-op the model wants pruned.
    fn next_state(&self, state: &Self::State, action: &Self::Action) -> Option<Self::State>;

    /// A canonical byte rendering of the state: two states behave identically
    /// going forward if and only if their canonical forms are equal. The
    /// checker fingerprints this for the visited set.
    fn canonicalize(&self, state: &Self::State) -> String;

    /// The safety properties to evaluate on every reachable state.
    fn properties(&self) -> Vec<Property<Self>>;
}

/// A named *always* (safety) property: `check` must hold in every reachable
/// state.
pub struct Property<M: Model + ?Sized> {
    /// Short identifier used in reports and violation records.
    pub name: &'static str,
    /// The predicate; `false` means the state violates the property.
    #[allow(clippy::type_complexity)]
    pub check: Box<dyn Fn(&M, &M::State) -> bool>,
}

impl<M: Model + ?Sized> std::fmt::Debug for Property<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Property({})", self.name)
    }
}

impl<M: Model + ?Sized> Property<M> {
    /// Convenience constructor for an always-property.
    pub fn always(name: &'static str, check: impl Fn(&M, &M::State) -> bool + 'static) -> Self {
        Property {
            name,
            check: Box::new(check),
        }
    }
}

/// Counters describing one exploration run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Stats {
    /// Distinct states whose successors were generated (or would have been,
    /// at the depth bound).
    pub states_explored: u64,
    /// Successor states skipped because their fingerprint was already seen.
    pub states_deduped: u64,
    /// Deepest BFS layer reached.
    pub max_depth_reached: u64,
    /// `true` when the depth or state bound cut the exploration short (the
    /// absence of violations is then only valid up to the bound).
    pub truncated: bool,
}

/// A property violation together with a minimal action trace reproducing it.
#[derive(Debug, Clone)]
pub struct Violation<M: Model> {
    /// Name of the violated property.
    pub property: &'static str,
    /// Index into [`Model::init_states`] the trace starts from.
    pub init_index: usize,
    /// Actions leading from the initial state to the violating state. Empty
    /// when an initial state itself violates the property.
    pub trace: Vec<M::Action>,
    /// Depth (trace length) of the violating state.
    pub depth: u64,
}

/// The outcome of a [`Checker`] run.
#[derive(Debug)]
pub struct CheckResult<M: Model> {
    /// Exploration counters.
    pub stats: Stats,
    /// First (hence minimal-depth) violation found per property, in the
    /// order violations were discovered.
    pub violations: Vec<Violation<M>>,
}

impl<M: Model> CheckResult<M> {
    /// `true` when no property was violated within the explored bound.
    pub fn holds(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Breadth-first explorer with a depth bound and a fingerprint-deduplicated
/// visited set.
#[derive(Debug, Clone)]
pub struct Checker {
    /// Maximum number of actions from an initial state (BFS layers).
    pub max_depth: u64,
    /// Upper bound on distinct states to explore; a runaway-model backstop.
    pub max_states: u64,
}

impl Default for Checker {
    fn default() -> Self {
        Checker {
            max_depth: 8,
            max_states: 1_000_000,
        }
    }
}

/// Bookkeeping for one enqueued state.
struct QueueEntry<M: Model> {
    state: M::State,
    fp: u128,
    depth: u64,
}

impl Checker {
    /// Creates a checker with the given depth bound (and the default state
    /// bound).
    pub fn with_max_depth(max_depth: u64) -> Self {
        Checker {
            max_depth,
            ..Checker::default()
        }
    }

    /// Explores `model` breadth-first and returns stats plus the first
    /// (minimal) violation of each property found within the bounds.
    pub fn check<M: Model>(&self, model: &M) -> CheckResult<M> {
        let properties = model.properties();
        let mut stats = Stats::default();
        let mut violations: Vec<Violation<M>> = Vec::new();
        let mut violated: BTreeSet<&'static str> = BTreeSet::new();
        // fingerprint -> (parent fingerprint, action from parent, init index)
        #[allow(clippy::type_complexity)]
        let mut parents: BTreeMap<u128, (Option<u128>, Option<M::Action>, usize)> = BTreeMap::new();
        let mut queue: VecDeque<QueueEntry<M>> = VecDeque::new();

        for (init_index, state) in model.init_states().into_iter().enumerate() {
            let fp = fingerprint(model.canonicalize(&state).as_bytes());
            if parents.contains_key(&fp) {
                stats.states_deduped += 1;
                continue;
            }
            parents.insert(fp, (None, None, init_index));
            queue.push_back(QueueEntry {
                state,
                fp,
                depth: 0,
            });
        }

        let mut actions: Vec<M::Action> = Vec::new();
        while let Some(entry) = queue.pop_front() {
            stats.max_depth_reached = stats.max_depth_reached.max(entry.depth);
            stats.states_explored += 1;

            for property in &properties {
                if violated.contains(property.name) {
                    continue;
                }
                if !(property.check)(model, &entry.state) {
                    violated.insert(property.name);
                    let (trace, init_index) = reconstruct_trace::<M>(&parents, entry.fp);
                    violations.push(Violation {
                        property: property.name,
                        init_index,
                        trace,
                        depth: entry.depth,
                    });
                }
            }
            if violated.len() == properties.len() && !properties.is_empty() {
                // Every property already has its minimal counterexample.
                stats.truncated = true;
                break;
            }

            if entry.depth >= self.max_depth {
                stats.truncated = true;
                continue;
            }
            if stats.states_explored >= self.max_states {
                stats.truncated = true;
                break;
            }

            actions.clear();
            model.actions(&entry.state, &mut actions);
            for action in &actions {
                let Some(next) = model.next_state(&entry.state, action) else {
                    continue;
                };
                let fp = fingerprint(model.canonicalize(&next).as_bytes());
                if parents.contains_key(&fp) {
                    stats.states_deduped += 1;
                    continue;
                }
                let init_index = parents[&entry.fp].2;
                parents.insert(fp, (Some(entry.fp), Some(action.clone()), init_index));
                queue.push_back(QueueEntry {
                    state: next,
                    fp,
                    depth: entry.depth + 1,
                });
            }
        }

        CheckResult { stats, violations }
    }
}

/// Walks the parent links back to an initial state, returning the action
/// trace (in execution order) and the initial-state index.
#[allow(clippy::type_complexity)]
fn reconstruct_trace<M: Model>(
    parents: &BTreeMap<u128, (Option<u128>, Option<M::Action>, usize)>,
    mut fp: u128,
) -> (Vec<M::Action>, usize) {
    let mut trace = Vec::new();
    let init_index = parents[&fp].2;
    loop {
        let (parent, action, _) = &parents[&fp];
        match (parent, action) {
            (Some(parent_fp), Some(action)) => {
                trace.push(action.clone());
                fp = *parent_fp;
            }
            _ => break,
        }
    }
    trace.reverse();
    (trace, init_index)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two counters that can each be incremented up to a cap; the invariant
    /// bounds their sum.
    struct TwoCounters {
        cap: u8,
        sum_bound: u8,
    }

    impl Model for TwoCounters {
        type State = (u8, u8);
        type Action = usize; // which counter to increment

        fn init_states(&self) -> Vec<Self::State> {
            vec![(0, 0)]
        }

        fn actions(&self, state: &Self::State, actions: &mut Vec<Self::Action>) {
            if state.0 < self.cap {
                actions.push(0);
            }
            if state.1 < self.cap {
                actions.push(1);
            }
        }

        fn next_state(&self, state: &Self::State, action: &Self::Action) -> Option<Self::State> {
            let mut next = *state;
            match action {
                0 => next.0 += 1,
                _ => next.1 += 1,
            }
            Some(next)
        }

        fn canonicalize(&self, state: &Self::State) -> String {
            format!("{state:?}")
        }

        fn properties(&self) -> Vec<Property<Self>> {
            let bound = self.sum_bound;
            vec![Property::always("sum-bounded", move |_, s: &(u8, u8)| {
                s.0 + s.1 < bound
            })]
        }
    }

    #[test]
    fn finds_minimal_counterexample() {
        let model = TwoCounters {
            cap: 10,
            sum_bound: 4,
        };
        let result = Checker::with_max_depth(10).check(&model);
        assert_eq!(result.violations.len(), 1);
        let v = &result.violations[0];
        assert_eq!(v.property, "sum-bounded");
        // The shallowest violating state has sum exactly 4.
        assert_eq!(v.depth, 4);
        assert_eq!(v.trace.len(), 4);
        // Replaying the trace reproduces the violation.
        let mut state = model.init_states().remove(v.init_index);
        for action in &v.trace {
            state = model.next_state(&state, action).expect("replayable");
        }
        assert_eq!(state.0 + state.1, 4);
    }

    #[test]
    fn dedup_collapses_the_lattice() {
        // Without dedup the (cap+1)^2 grid would be explored once per path
        // (exponentially many); with dedup each state is explored once.
        let model = TwoCounters {
            cap: 4,
            sum_bound: 255,
        };
        let result = Checker::with_max_depth(20).check(&model);
        assert!(result.holds());
        assert_eq!(result.stats.states_explored, 25);
        assert!(result.stats.states_deduped > 0);
        assert!(!result.stats.truncated);
        assert_eq!(result.stats.max_depth_reached, 8);
    }

    #[test]
    fn depth_bound_truncates() {
        let model = TwoCounters {
            cap: 40,
            sum_bound: 255,
        };
        let result = Checker::with_max_depth(3).check(&model);
        assert!(result.holds());
        assert!(result.stats.truncated);
        assert_eq!(result.stats.max_depth_reached, 3);
    }

    #[test]
    fn initial_state_violation_has_empty_trace() {
        let model = TwoCounters {
            cap: 2,
            sum_bound: 0,
        };
        let result = Checker::default().check(&model);
        assert_eq!(result.violations.len(), 1);
        assert!(result.violations[0].trace.is_empty());
        assert_eq!(result.violations[0].depth, 0);
    }

    #[test]
    fn fingerprints_differ_for_different_inputs() {
        assert_ne!(fingerprint(b"a"), fingerprint(b"b"));
        assert_ne!(fingerprint(b""), fingerprint(b"\0"));
        assert_eq!(fingerprint(b"same"), fingerprint(b"same"));
    }
}
